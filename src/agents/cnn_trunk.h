// The shared CNN feature extractor of Fig. 1: three 3x3 convolutions with
// layer normalization after each, followed by a fully connected layer
// producing the 1-D state feature phi(s_t). Used by the PPO actor-critic
// and by the DQN baseline's Q-network.
#ifndef CEWS_AGENTS_CNN_TRUNK_H_
#define CEWS_AGENTS_CNN_TRUNK_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"

namespace cews::agents {

/// Trunk architecture knobs.
struct CnnTrunkConfig {
  int in_channels = 3;
  int grid = 20;
  int conv1_channels = 8;
  int conv2_channels = 16;
  int conv3_channels = 16;
  int feature_dim = 256;
};

/// conv3x3(s1)-LN-ReLU -> conv3x3(s2)-LN-ReLU -> conv3x3(s2)-LN-ReLU ->
/// flatten -> FC -> ReLU.
class CnnTrunk : public nn::Module {
 public:
  CnnTrunk(const CnnTrunkConfig& config, cews::Rng& rng);

  /// x: [N, in_channels, grid, grid] -> [N, feature_dim].
  nn::Tensor Forward(const nn::Tensor& x) const;

  std::vector<nn::Tensor> Parameters() const override;

  const CnnTrunkConfig& config() const { return config_; }

 private:
  CnnTrunkConfig config_;
  std::unique_ptr<nn::Conv2dLayer> conv1_, conv2_, conv3_;
  std::unique_ptr<nn::LayerNorm> ln1_, ln2_, ln3_;
  std::unique_ptr<nn::Linear> fc_;
  nn::Index flat_after_conv_ = 0;
};

}  // namespace cews::agents

#endif  // CEWS_AGENTS_CNN_TRUNK_H_
