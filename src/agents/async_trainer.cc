#include "agents/async_trainer.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "agents/rollout.h"
#include "agents/trainer_core.h"
#include "agents/trainer_obs.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "nn/ops.h"
#include "nn/params.h"
#include "obs/trace.h"

namespace cews::agents {

VtraceResult ComputeVtrace(const std::vector<float>& rewards,
                           const std::vector<bool>& dones,
                           const std::vector<float>& values,
                           const std::vector<float>& ratios, float gamma,
                           float rho_bar, float c_bar) {
  const size_t t_max = rewards.size();
  CEWS_CHECK_EQ(dones.size(), t_max);
  CEWS_CHECK_EQ(ratios.size(), t_max);
  CEWS_CHECK_EQ(values.size(), t_max + 1);
  VtraceResult result;
  result.vs.assign(t_max, 0.0f);
  result.pg_advantages.assign(t_max, 0.0f);
  // Backward recursion: vs_t = V_t + delta_t + gamma c_t (vs_{t+1} -
  // V_{t+1}); a terminal step cuts the trace.
  float vs_next = values[t_max];
  float v_next = values[t_max];
  for (size_t t = t_max; t-- > 0;) {
    const float not_done = dones[t] ? 0.0f : 1.0f;
    const float rho = std::min(rho_bar, ratios[t]);
    const float c = std::min(c_bar, ratios[t]);
    const float next_value = not_done * v_next;
    const float next_vs = not_done * vs_next;
    const float delta = rho * (rewards[t] + gamma * next_value - values[t]);
    const float vs =
        values[t] + delta + gamma * c * (next_vs - next_value);
    result.vs[t] = vs;
    result.pg_advantages[t] =
        rho * (rewards[t] + gamma * next_vs - values[t]);
    vs_next = vs;
    v_next = values[t];
  }
  return result;
}

AsyncTrainer::AsyncTrainer(const AsyncTrainerConfig& config, env::Map map)
    : config_(config), map_(std::move(map)), encoder_(config.encoder) {
  CEWS_CHECK_GT(config_.num_employees, 0);
  CEWS_CHECK_GT(config_.episodes, 0);
  CEWS_CHECK_GT(config_.envs_per_employee, 0);
  config_.net.num_workers = static_cast<int>(map_.worker_spawns.size());
  config_.net.num_moves = config_.env.action_space.num_moves();
  config_.net.grid = config_.encoder.grid;
  Rng rng(config_.seed);
  global_net_ = std::make_unique<PolicyNet>(config_.net, rng);
  optimizer_ =
      std::make_unique<nn::Adam>(global_net_->Parameters(), config_.lr);
}

AsyncTrainer::~AsyncTrainer() = default;

void AsyncTrainer::EmployeeLoop(int employee_id) {
  Rng init_rng(config_.seed + static_cast<uint64_t>(employee_id) + 5000);
  PolicyNet local(config_.net, init_rng);
  const std::vector<nn::Tensor> local_params = local.Parameters();
  env::VecEnv vec(config_.env, map_, config_.envs_per_employee);
  const int n = vec.size();
  Rng rng(config_.seed * 6131 + static_cast<uint64_t>(employee_id));
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    nn::CopyParameters(global_net_->Parameters(), local_params);
  }
  const int state_size = encoder_.StateSize();

  VecRolloutOptions rollout_options;
  rollout_options.sparse_reward =
      config_.reward_mode == RewardMode::kSparse;
  rollout_options.reward_scale = config_.reward_scale;

  TrainerPhaseMetrics& phase_metrics = TrainerMetrics();
  for (int episode = 0; episode < config_.episodes; ++episode) {
    // ---- Rollout with the (possibly stale) local policy, via the shared
    // vectorized acting path (trainer_core.h) ----
    Stopwatch episode_watch;
    VecRolloutResult rollout =
        RunVecRollout(local, vec, encoder_, rng, rollout_options);
    // One contiguous gather per instance episode for the learner pass.
    std::vector<MiniBatch> batches;
    batches.reserve(static_cast<size_t>(n));
    for (RolloutBuffer& b : rollout.buffers) batches.push_back(b.PackAll());

    // ---- Pull the newest global parameters: the learner is now *ahead* of
    // the behavior policy that produced the rollout (other employees have
    // advanced the global model meanwhile). This is the policy-lag of
    // Section V-A; V-trace's importance ratios correct for it. ----
    {
      CEWS_TRACE_SCOPE("trainer.sync");
      obs::ScopedTimerNs sync_timer(phase_metrics.sync_ns);
      std::lock_guard<std::mutex> lock(model_mu_);
      nn::CopyParameters(global_net_->Parameters(), local_params);
    }

    // ---- Learner pass: one V-trace loss per instance episode, gradients
    // accumulated across instances into a single update ----
    std::vector<float> grads;
    {
      CEWS_TRACE_SCOPE("trainer.learn");
      obs::ScopedTimerNs learn_timer(phase_metrics.learn_ns);
      const PolicyNetConfig& cfg = config_.net;
      nn::ZeroGradients(local_params);
      for (MiniBatch& mb : batches) {
        const size_t t_max = static_cast<size_t>(mb.batch);
        CEWS_CHECK_EQ(mb.state_size, static_cast<int64_t>(state_size));
        CEWS_CHECK_EQ(mb.num_workers, cfg.num_workers);
        const nn::Tensor x = nn::Tensor::FromData(
            {static_cast<nn::Index>(t_max), cfg.in_channels, cfg.grid,
             cfg.grid},
            std::move(mb.states));
        const PolicyOutput out = local.Forward(x);
        nn::Tensor move_logp = nn::LogSoftmax(out.move_logits);
        nn::Tensor charge_logp = nn::LogSoftmax(out.charge_logits);
        nn::Tensor logp = nn::Add(
            nn::SumLastDim(nn::GatherLastDim(move_logp, mb.move_indices)),
            nn::SumLastDim(
                nn::GatherLastDim(charge_logp, mb.charge_indices)));

        // Detached values and IS ratios feed the (constant) targets.
        std::vector<float> values(t_max + 1, 0.0f);
        std::vector<float> ratios(t_max, 1.0f);
        std::vector<bool> dones(t_max);
        for (size_t t = 0; t < t_max; ++t) {
          values[t] = out.value.data()[t];
          dones[t] = mb.dones[t] != 0;
          if (config_.use_vtrace) {
            ratios[t] = std::exp(logp.data()[t] - mb.log_probs[t]);
          }
        }
        const VtraceResult vtrace =
            ComputeVtrace(mb.rewards, dones, values, ratios, config_.gamma,
                          config_.rho_bar, config_.c_bar);

        const nn::Tensor advantages = nn::Tensor::FromData(
            {static_cast<nn::Index>(t_max)}, vtrace.pg_advantages);
        const nn::Tensor value_targets =
            nn::Tensor::FromData({static_cast<nn::Index>(t_max)}, vtrace.vs);
        nn::Tensor policy_loss =
            nn::Neg(nn::Mean(nn::Mul(logp, advantages)));
        nn::Tensor value_loss =
            nn::Mean(nn::Square(nn::Sub(out.value, value_targets)));
        const float inv_t = 1.0f / static_cast<float>(t_max);
        nn::Tensor entropy = nn::MulScalar(
            nn::Add(
                nn::Sum(nn::Mul(nn::Softmax(out.move_logits), move_logp)),
                nn::Sum(
                    nn::Mul(nn::Softmax(out.charge_logits), charge_logp))),
            -inv_t);
        nn::Tensor total = nn::Add(
            nn::Add(policy_loss,
                    nn::MulScalar(value_loss, config_.value_coef)),
            nn::MulScalar(entropy, -config_.entropy_coef));
        total.Backward();
        if (employee_id == 0) {
          phase_metrics.loss->Set(total.item());
        }
      }
      // The clip budget scales with the number of accumulated instance
      // losses, mirroring the chief's num_employees convention; n == 1
      // keeps the legacy bound.
      nn::ClipGradByGlobalNorm(local_params,
                               config_.max_grad_norm *
                                   static_cast<float>(n));
      grads = nn::FlattenGradients(local_params);
    }

    // ---- Push gradient / pull parameters, no barrier ----
    {
      CEWS_TRACE_SCOPE("trainer.sync");
      obs::ScopedTimerNs sync_timer(phase_metrics.sync_ns);
      std::lock_guard<std::mutex> lock(model_mu_);
      const std::vector<nn::Tensor> global_params =
          global_net_->Parameters();
      nn::ZeroGradients(global_params);
      nn::AccumulateFlatGradients(global_params, grads);
      optimizer_->Step();
      nn::CopyParameters(global_params, local_params);
    }

    // ---- Record stats: one EpisodeRecord per instance episode ----
    const double wall = episode_watch.ElapsedSeconds();
    for (int i = 0; i < n; ++i) {
      double reward_sum = 0.0;
      for (float r : batches[static_cast<size_t>(i)].rewards) {
        reward_sum += r;
      }
      EpisodeRecord rec;
      rec.kappa = vec.env(i).Kappa();
      rec.xi = vec.env(i).Xi();
      rec.rho = vec.env(i).Rho();
      rec.extrinsic_reward =
          reward_sum / (config_.reward_scale * config_.env.horizon);
      rec.wall_seconds = wall;
      if (rec.wall_seconds > 0.0) {
        rec.steps_per_sec =
            static_cast<double>(rollout.env_steps) / rec.wall_seconds;
      }
      phase_metrics.episodes->Increment();
      phase_metrics.kappa->Set(rec.kappa);
      phase_metrics.xi->Set(rec.xi);
      phase_metrics.rho->Set(rec.rho);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        rec.episode = static_cast<int>(history_.size());
        history_.push_back(rec);
      }
    }
  }
}

TrainResult AsyncTrainer::Train() {
  Stopwatch watch;
  runtime::SetGlobalPoolThreads(
      runtime::ResolveNumThreads(config_.runtime_threads));
  history_.clear();
  history_.reserve(static_cast<size_t>(config_.num_employees) *
                   static_cast<size_t>(config_.episodes) *
                   static_cast<size_t>(config_.envs_per_employee));
  std::vector<std::thread> threads;
  for (int i = 0; i < config_.num_employees; ++i) {
    threads.emplace_back([this, i]() { EmployeeLoop(i); });
  }
  for (std::thread& t : threads) t.join();
  TrainResult result;
  result.seconds = watch.ElapsedSeconds();
  result.history = history_;
  return result;
}

}  // namespace cews::agents
