#include "agents/rnd.h"

#include "common/check.h"
#include "nn/ops.h"

namespace cews::agents {

RndCuriosity::RndCuriosity(const RndConfig& config, uint64_t seed)
    : config_(config) {
  CEWS_CHECK_GT(config_.state_size, 0);
  CEWS_CHECK_GT(config_.out_dim, 0);
  Rng rng(seed);
  target_ = std::make_unique<nn::Mlp>(
      std::vector<nn::Index>{config_.state_size, config_.hidden,
                             config_.out_dim},
      nn::Activation::kRelu, rng);
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<nn::Index>{config_.state_size, config_.hidden,
                             config_.out_dim},
      nn::Activation::kRelu, rng);
}

nn::Tensor RndCuriosity::TargetEmbedding(const nn::Tensor& x) const {
  // The target network is frozen: evaluate it without tape so its output is
  // a constant in the predictor's loss graph.
  nn::NoGradGuard no_grad;
  return target_->Forward(x);
}

double RndCuriosity::IntrinsicReward(const std::vector<float>& state) const {
  CEWS_CHECK_EQ(static_cast<int>(state.size()), config_.state_size);
  nn::NoGradGuard no_grad;
  const nn::Tensor x =
      nn::Tensor::FromData({1, config_.state_size}, state);
  const nn::Tensor t = target_->Forward(x);
  const nn::Tensor p = predictor_->Forward(x);
  double loss = 0.0;
  for (int i = 0; i < config_.out_dim; ++i) {
    const double d = static_cast<double>(p.data()[i]) - t.data()[i];
    loss += d * d;
  }
  // Per-dimension normalization, as in the spatial curiosity model.
  return config_.eta * loss / config_.out_dim;
}

double RndCuriosity::IntrinsicReward(const float* state) const {
  return IntrinsicReward(
      std::vector<float>(state, state + config_.state_size));
}

nn::Tensor RndCuriosity::Loss(const MiniBatch& batch) const {
  CEWS_CHECK_GT(batch.batch, 0) << "RND Loss on an empty minibatch";
  CEWS_CHECK_EQ(batch.state_size, config_.state_size);
  const nn::Index b = batch.batch;

  if (nn::graph::GraphModeEnabled() && nn::GradModeEnabled() &&
      !nn::graph::Recording()) {
    auto it = loss_graphs_.find(b);
    if (it == loss_graphs_.end()) {
      nn::graph::NoteCacheMiss();
      LossGraph g;
      g.x = nn::Tensor::FromData({b, config_.state_size}, batch.states);
      nn::graph::BeginRecording();
      nn::graph::MarkPlaceholder(g.x);
      // The target net forwards under NoGrad, so its steps carry no
      // closures — but they read the placeholder, so they replay (they are
      // not memoized away).
      const nn::Tensor target = TargetEmbedding(g.x);
      const nn::Tensor pred = predictor_->Forward(g.x);
      g.loss = nn::MulScalar(
          nn::Mean(nn::SumLastDim(nn::Square(nn::Sub(pred, target)))),
          1.0f / static_cast<float>(config_.out_dim));
      g.graph = nn::graph::EndRecording(g.loss);
      it = loss_graphs_.emplace(b, std::move(g)).first;
    } else {
      nn::graph::NoteCacheHit();
      LossGraph& g = it->second;
      CEWS_CHECK_EQ(batch.states.size(), g.x.impl()->data.size());
      std::copy(batch.states.begin(), batch.states.end(),
                g.x.impl()->data.data());
      g.graph->Forward();
    }
    return it->second.loss;
  }

  // The packed state block is already the [B, state_size] tensor layout.
  const nn::Tensor x =
      nn::Tensor::FromData({b, config_.state_size}, batch.states);
  const nn::Tensor target = TargetEmbedding(x);
  const nn::Tensor pred = predictor_->Forward(x);
  return nn::MulScalar(
      nn::Mean(nn::SumLastDim(nn::Square(nn::Sub(pred, target)))),
      1.0f / static_cast<float>(config_.out_dim));
}

nn::Tensor RndCuriosity::Loss(
    const std::vector<const std::vector<float>*>& states) const {
  CEWS_CHECK(!states.empty());
  const nn::Index b = static_cast<nn::Index>(states.size());
  std::vector<float> batch(static_cast<size_t>(b * config_.state_size));
  for (nn::Index i = 0; i < b; ++i) {
    const std::vector<float>& s = *states[static_cast<size_t>(i)];
    CEWS_CHECK_EQ(static_cast<int>(s.size()), config_.state_size);
    std::copy(s.begin(), s.end(), batch.begin() + i * config_.state_size);
  }
  const nn::Tensor x =
      nn::Tensor::FromData({b, config_.state_size}, std::move(batch));
  const nn::Tensor target = TargetEmbedding(x);
  const nn::Tensor pred = predictor_->Forward(x);
  return nn::MulScalar(
      nn::Mean(nn::SumLastDim(nn::Square(nn::Sub(pred, target)))),
      1.0f / static_cast<float>(config_.out_dim));
}

std::vector<nn::Tensor> RndCuriosity::Parameters() const {
  return predictor_->Parameters();
}

}  // namespace cews::agents
