#include "agents/ppo.h"

#include <cmath>

#include "agents/eval.h"
#include "common/check.h"
#include "common/math_util.h"
#include "common/stopwatch.h"
#include "nn/ops.h"
#include "nn/params.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cews::agents {

PpoAgent::PpoAgent(const PolicyNetConfig& net_config,
                   const PpoConfig& ppo_config, uint64_t seed)
    : config_(ppo_config) {
  Rng rng(seed);
  net_ = std::make_unique<PolicyNet>(net_config, rng);
  optimizer_ = std::make_unique<nn::Adam>(net_->Parameters(), config_.lr);
}

ActResult PpoAgent::Act(const std::vector<float>& state, Rng& rng,
                        bool deterministic) const {
  return SamplePolicy(*net_, state, rng, deterministic);
}

float PpoAgent::Value(const std::vector<float>& state) const {
  nn::NoGradGuard no_grad;
  const PolicyNetConfig& cfg = net_->config();
  nn::Tensor x = nn::Tensor::FromData(
      {1, cfg.in_channels, cfg.grid, cfg.grid}, state);
  return net_->Forward(x).value.item();
}

PpoAgent::LossParts PpoAgent::BuildLoss(
    const PolicyOutput& out, const nn::Tensor& logp_old,
    const nn::Tensor& advantage, const nn::Tensor& returns,
    std::shared_ptr<const std::vector<nn::Index>> move_idx,
    std::shared_ptr<const std::vector<nn::Index>> charge_idx,
    nn::Index b) const {
  LossParts parts;

  // Joint new log-prob: sum over workers of move + charge log-probs.
  nn::Tensor move_logp = nn::LogSoftmax(out.move_logits);    // [B, W, M]
  nn::Tensor charge_logp = nn::LogSoftmax(out.charge_logits);  // [B, W, 2]
  parts.logp_new = nn::Add(
      nn::SumLastDim(nn::GatherLastDim(move_logp, std::move(move_idx))),
      nn::SumLastDim(nn::GatherLastDim(charge_logp, std::move(charge_idx))));

  // Clipped surrogate objective (Eqn 12); minimize its negation.
  parts.ratio = nn::Exp(nn::Sub(parts.logp_new, logp_old));
  nn::Tensor surr1 = nn::Mul(parts.ratio, advantage);
  nn::Tensor surr2 = nn::Mul(
      nn::Clip(parts.ratio, 1.0f - config_.clip_eps, 1.0f + config_.clip_eps),
      advantage);
  parts.policy_loss = nn::Neg(nn::Mean(nn::Min(surr1, surr2)));

  // Value loss (Eqn 11).
  parts.value_loss = nn::Mean(nn::Square(nn::Sub(out.value, returns)));

  // Entropy bonus over both heads, mean per sample.
  const float inv_b = 1.0f / static_cast<float>(b);
  nn::Tensor move_probs = nn::Softmax(out.move_logits);
  nn::Tensor charge_probs = nn::Softmax(out.charge_logits);
  parts.entropy = nn::MulScalar(
      nn::Add(nn::Sum(nn::Mul(move_probs, move_logp)),
              nn::Sum(nn::Mul(charge_probs, charge_logp))),
      -inv_b);

  parts.total = nn::Add(
      nn::Add(parts.policy_loss,
              nn::MulScalar(parts.value_loss, config_.value_coef)),
      nn::MulScalar(parts.entropy, -config_.entropy_coef));
  return parts;
}

void PpoAgent::FillStats(const LossParts& parts, const float* old_logp,
                         nn::Index b, LossStats* stats) const {
  stats->policy_loss = parts.policy_loss.item();
  stats->value_loss = parts.value_loss.item();
  stats->entropy = parts.entropy.item();
  stats->total = parts.total.item();
  double kl = 0.0;
  int clipped = 0;
  for (nn::Index i = 0; i < b; ++i) {
    kl += old_logp[i] - parts.logp_new.data()[i];
    const float r = parts.ratio.data()[i];
    if (r < 1.0f - config_.clip_eps || r > 1.0f + config_.clip_eps) {
      ++clipped;
    }
  }
  stats->approx_kl = static_cast<float>(kl / b);
  stats->clip_fraction = static_cast<float>(clipped) / static_cast<float>(b);
}

nn::Tensor PpoAgent::ComputeLoss(MiniBatch batch, LossStats* stats) const {
  CEWS_TRACE_SCOPE("agents.PpoLoss");
  static obs::Histogram* const loss_ns = obs::GetHistogram("ppo.loss_ns");
  obs::ScopedTimerNs loss_timer(loss_ns);
  const PolicyNetConfig& cfg = net_->config();
  const nn::Index b = batch.batch;
  CEWS_CHECK_GT(b, 0) << "ComputeLoss on an empty minibatch";
  CEWS_CHECK_EQ(batch.state_size,
                nn::Index{cfg.in_channels} * cfg.grid * cfg.grid);
  CEWS_CHECK_EQ(batch.num_workers, cfg.num_workers);
  CEWS_CHECK_EQ(static_cast<nn::Index>(batch.advantages.size()), b)
      << "minibatch carries no advantages: run ComputeAdvantages on the "
         "rollout buffer before sampling";
  CEWS_CHECK_EQ(static_cast<nn::Index>(batch.returns.size()), b);

  // Per-batch advantage normalization (as DPPO; Section VII-B).
  if (config_.normalize_advantages && b > 1) {
    double mean = 0.0;
    for (float a : batch.advantages) mean += a;
    mean /= static_cast<double>(b);
    double var = 0.0;
    for (float a : batch.advantages) var += (a - mean) * (a - mean);
    var /= static_cast<double>(b);
    const float inv_std = 1.0f / (std::sqrt(static_cast<float>(var)) + 1e-8f);
    for (float& a : batch.advantages) {
      a = (a - static_cast<float>(mean)) * inv_std;
    }
  }

  // Graph mode: compile the whole loss once per batch size, then replay it
  // against rewritten placeholders — no per-step tape rebuild.
  if (nn::graph::GraphModeEnabled() && nn::GradModeEnabled() &&
      !nn::graph::Recording()) {
    return GraphLoss(std::move(batch), stats);
  }

  // The packed arrays are adopted wholesale — no per-transition gather.
  nn::Tensor x = nn::Tensor::FromData(
      {b, cfg.in_channels, cfg.grid, cfg.grid}, std::move(batch.states));
  const PolicyOutput out = net_->Forward(x);

  const std::vector<float> old_logp = std::move(batch.log_probs);
  nn::Tensor logp_old = nn::Tensor::FromData({b}, old_logp);
  nn::Tensor advantage =
      nn::Tensor::FromData({b}, std::move(batch.advantages));
  nn::Tensor returns = nn::Tensor::FromData({b}, std::move(batch.returns));

  LossParts parts = BuildLoss(
      out, logp_old, advantage, returns,
      std::make_shared<const std::vector<nn::Index>>(
          std::move(batch.move_indices)),
      std::make_shared<const std::vector<nn::Index>>(
          std::move(batch.charge_indices)),
      b);
  if (stats != nullptr) FillStats(parts, old_logp.data(), b, stats);
  return parts.total;
}

nn::Index PpoAgent::LossGraphArenaBytes() const {
  nn::Index total = 0;
  for (const auto& [batch, g] : loss_graphs_) {
    if (g.graph != nullptr) total += g.graph->arena_bytes();
  }
  return total;
}

nn::Tensor PpoAgent::GraphLoss(MiniBatch batch, LossStats* stats) const {
  const PolicyNetConfig& cfg = net_->config();
  const nn::Index b = batch.batch;
  auto it = loss_graphs_.find(b);
  if (it == loss_graphs_.end()) {
    nn::graph::NoteCacheMiss();
    LossGraph g;
    // Placeholder leaves adopt the recording batch's data; replays rewrite
    // them in place. The gather indices live behind shared handles the
    // recorded thunks re-read (and re-bounds-check) on every run.
    g.move_idx = std::make_shared<std::vector<nn::Index>>(
        std::move(batch.move_indices));
    g.charge_idx = std::make_shared<std::vector<nn::Index>>(
        std::move(batch.charge_indices));
    g.x = nn::Tensor::FromData({b, cfg.in_channels, cfg.grid, cfg.grid},
                               std::move(batch.states));
    g.logp_old = nn::Tensor::FromData({b}, std::move(batch.log_probs));
    g.advantage = nn::Tensor::FromData({b}, std::move(batch.advantages));
    g.returns = nn::Tensor::FromData({b}, std::move(batch.returns));
    nn::graph::BeginRecording();
    nn::graph::MarkPlaceholder(g.x);
    nn::graph::MarkPlaceholder(g.logp_old);
    nn::graph::MarkPlaceholder(g.advantage);
    nn::graph::MarkPlaceholder(g.returns);
    const PolicyOutput out = net_->Forward(g.x);
    g.parts = BuildLoss(out, g.logp_old, g.advantage, g.returns, g.move_idx,
                        g.charge_idx, b);
    // LossStats reads these between replays.
    nn::graph::Retain(g.parts.logp_new);
    nn::graph::Retain(g.parts.ratio);
    nn::graph::Retain(g.parts.policy_loss);
    nn::graph::Retain(g.parts.value_loss);
    nn::graph::Retain(g.parts.entropy);
    g.graph = nn::graph::EndRecording(g.parts.total);
    // The recording pass already ran this batch's forward.
    it = loss_graphs_.emplace(b, std::move(g)).first;
  } else {
    nn::graph::NoteCacheHit();
    LossGraph& g = it->second;
    CEWS_CHECK_EQ(batch.states.size(), g.x.impl()->data.size());
    std::copy(batch.states.begin(), batch.states.end(),
              g.x.impl()->data.data());
    std::copy(batch.log_probs.begin(), batch.log_probs.end(),
              g.logp_old.impl()->data.data());
    std::copy(batch.advantages.begin(), batch.advantages.end(),
              g.advantage.impl()->data.data());
    std::copy(batch.returns.begin(), batch.returns.end(),
              g.returns.impl()->data.data());
    *g.move_idx = std::move(batch.move_indices);
    *g.charge_idx = std::move(batch.charge_indices);
    g.graph->Forward();
  }
  LossGraph& g = it->second;
  if (stats != nullptr) {
    FillStats(g.parts, g.logp_old.data(), b, stats);
  }
  return g.parts.total;
}

nn::Tensor PpoAgent::ComputeLoss(const RolloutBuffer& buffer,
                                 const std::vector<size_t>& idx,
                                 LossStats* stats) const {
  CEWS_CHECK_EQ(buffer.advantages().size(), buffer.size())
      << "ComputeLoss before ComputeAdvantages";
  return ComputeLoss(buffer.GatherBatch(idx), stats);
}

void PpoAgent::UpdateStandalone(const RolloutBuffer& buffer, Rng& rng,
                                int epochs, size_t minibatch) {
  CEWS_CHECK_GT(epochs, 0);
  for (int k = 0; k < epochs; ++k) {
    const std::vector<size_t> idx = buffer.SampleIndices(minibatch, rng);
    optimizer_->ZeroGrad();
    nn::Tensor loss = ComputeLoss(buffer, idx);
    loss.Backward();
    nn::ClipGradByGlobalNorm(net_->Parameters(), config_.max_grad_norm);
    optimizer_->Step();
  }
}

}  // namespace cews::agents
