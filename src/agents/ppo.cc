#include "agents/ppo.h"

#include <cmath>

#include "agents/eval.h"
#include "common/check.h"
#include "common/math_util.h"
#include "common/stopwatch.h"
#include "nn/ops.h"
#include "nn/params.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cews::agents {

PpoAgent::PpoAgent(const PolicyNetConfig& net_config,
                   const PpoConfig& ppo_config, uint64_t seed)
    : config_(ppo_config) {
  Rng rng(seed);
  net_ = std::make_unique<PolicyNet>(net_config, rng);
  optimizer_ = std::make_unique<nn::Adam>(net_->Parameters(), config_.lr);
}

ActResult PpoAgent::Act(const std::vector<float>& state, Rng& rng,
                        bool deterministic) const {
  return SamplePolicy(*net_, state, rng, deterministic);
}

float PpoAgent::Value(const std::vector<float>& state) const {
  nn::NoGradGuard no_grad;
  const PolicyNetConfig& cfg = net_->config();
  nn::Tensor x = nn::Tensor::FromData(
      {1, cfg.in_channels, cfg.grid, cfg.grid}, state);
  return net_->Forward(x).value.item();
}

nn::Tensor PpoAgent::ComputeLoss(MiniBatch batch, LossStats* stats) const {
  CEWS_TRACE_SCOPE("agents.PpoLoss");
  static obs::Histogram* const loss_ns = obs::GetHistogram("ppo.loss_ns");
  obs::ScopedTimerNs loss_timer(loss_ns);
  const PolicyNetConfig& cfg = net_->config();
  const nn::Index b = batch.batch;
  CEWS_CHECK_GT(b, 0) << "ComputeLoss on an empty minibatch";
  CEWS_CHECK_EQ(batch.state_size,
                nn::Index{cfg.in_channels} * cfg.grid * cfg.grid);
  CEWS_CHECK_EQ(batch.num_workers, cfg.num_workers);
  CEWS_CHECK_EQ(static_cast<nn::Index>(batch.advantages.size()), b)
      << "minibatch carries no advantages: run ComputeAdvantages on the "
         "rollout buffer before sampling";
  CEWS_CHECK_EQ(static_cast<nn::Index>(batch.returns.size()), b);

  // Per-batch advantage normalization (as DPPO; Section VII-B).
  if (config_.normalize_advantages && b > 1) {
    double mean = 0.0;
    for (float a : batch.advantages) mean += a;
    mean /= static_cast<double>(b);
    double var = 0.0;
    for (float a : batch.advantages) var += (a - mean) * (a - mean);
    var /= static_cast<double>(b);
    const float inv_std = 1.0f / (std::sqrt(static_cast<float>(var)) + 1e-8f);
    for (float& a : batch.advantages) {
      a = (a - static_cast<float>(mean)) * inv_std;
    }
  }

  // The packed arrays are adopted wholesale — no per-transition gather.
  nn::Tensor x = nn::Tensor::FromData(
      {b, cfg.in_channels, cfg.grid, cfg.grid}, std::move(batch.states));
  const PolicyOutput out = net_->Forward(x);

  // Joint new log-prob: sum over workers of move + charge log-probs.
  nn::Tensor move_logp = nn::LogSoftmax(out.move_logits);    // [B, W, M]
  nn::Tensor charge_logp = nn::LogSoftmax(out.charge_logits);  // [B, W, 2]
  nn::Tensor logp_new = nn::Add(
      nn::SumLastDim(nn::GatherLastDim(move_logp, batch.move_indices)),
      nn::SumLastDim(nn::GatherLastDim(charge_logp, batch.charge_indices)));

  const std::vector<float> old_logp = std::move(batch.log_probs);
  nn::Tensor logp_old = nn::Tensor::FromData({b}, old_logp);
  nn::Tensor advantage =
      nn::Tensor::FromData({b}, std::move(batch.advantages));
  nn::Tensor returns = nn::Tensor::FromData({b}, std::move(batch.returns));

  // Clipped surrogate objective (Eqn 12); minimize its negation.
  nn::Tensor ratio = nn::Exp(nn::Sub(logp_new, logp_old));
  nn::Tensor surr1 = nn::Mul(ratio, advantage);
  nn::Tensor surr2 = nn::Mul(
      nn::Clip(ratio, 1.0f - config_.clip_eps, 1.0f + config_.clip_eps),
      advantage);
  nn::Tensor policy_loss = nn::Neg(nn::Mean(nn::Min(surr1, surr2)));

  // Value loss (Eqn 11).
  nn::Tensor value_loss = nn::Mean(nn::Square(nn::Sub(out.value, returns)));

  // Entropy bonus over both heads, mean per sample.
  const float inv_b = 1.0f / static_cast<float>(b);
  nn::Tensor move_probs = nn::Softmax(out.move_logits);
  nn::Tensor charge_probs = nn::Softmax(out.charge_logits);
  nn::Tensor entropy = nn::MulScalar(
      nn::Add(nn::Sum(nn::Mul(move_probs, move_logp)),
              nn::Sum(nn::Mul(charge_probs, charge_logp))),
      -inv_b);

  nn::Tensor total = nn::Add(
      nn::Add(policy_loss, nn::MulScalar(value_loss, config_.value_coef)),
      nn::MulScalar(entropy, -config_.entropy_coef));

  if (stats != nullptr) {
    stats->policy_loss = policy_loss.item();
    stats->value_loss = value_loss.item();
    stats->entropy = entropy.item();
    stats->total = total.item();
    double kl = 0.0;
    int clipped = 0;
    for (nn::Index i = 0; i < b; ++i) {
      kl += old_logp[static_cast<size_t>(i)] - logp_new.data()[i];
      const float r = ratio.data()[i];
      if (r < 1.0f - config_.clip_eps || r > 1.0f + config_.clip_eps) {
        ++clipped;
      }
    }
    stats->approx_kl = static_cast<float>(kl / b);
    stats->clip_fraction =
        static_cast<float>(clipped) / static_cast<float>(b);
  }
  return total;
}

nn::Tensor PpoAgent::ComputeLoss(const RolloutBuffer& buffer,
                                 const std::vector<size_t>& idx,
                                 LossStats* stats) const {
  CEWS_CHECK_EQ(buffer.advantages().size(), buffer.size())
      << "ComputeLoss before ComputeAdvantages";
  return ComputeLoss(buffer.GatherBatch(idx), stats);
}

void PpoAgent::UpdateStandalone(const RolloutBuffer& buffer, Rng& rng,
                                int epochs, size_t minibatch) {
  CEWS_CHECK_GT(epochs, 0);
  for (int k = 0; k < epochs; ++k) {
    const std::vector<size_t> idx = buffer.SampleIndices(minibatch, rng);
    optimizer_->ZeroGrad();
    nn::Tensor loss = ComputeLoss(buffer, idx);
    loss.Backward();
    nn::ClipGradByGlobalNorm(net_->Parameters(), config_.max_grad_norm);
    optimizer_->Step();
  }
}

}  // namespace cews::agents
