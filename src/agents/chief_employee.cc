#include "agents/chief_employee.h"

#include <thread>

#include "agents/eval.h"
#include "agents/reward_normalizer.h"
#include "agents/trainer_core.h"
#include "agents/trainer_obs.h"
#include "common/check.h"
#include "common/log.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "nn/params.h"
#include "nn/serialize.h"
#include "obs/stats_reporter.h"
#include "obs/trace.h"

namespace cews::agents {

namespace {

/// Position observation in both curiosity representations.
env::Position WorkerPos(const env::Env& e, int w) {
  return e.workers()[static_cast<size_t>(w)].pos;
}

PositionObs MakeObs(const env::StateEncoder& encoder, const env::Map& map,
                    const env::Position& p) {
  PositionObs obs;
  obs.cell = encoder.CellIndex(map, p);
  obs.sx = static_cast<float>(p.x / map.config.size_x);
  obs.sy = static_cast<float>(p.y / map.config.size_y);
  return obs;
}

/// Bridges the intrinsic-reward modules into the shared vectorized rollout
/// (trainer_core.h): captures per-worker "from" observations before each
/// lockstep step and computes r^int after it — per-worker spatial curiosity
/// (with curiosity-sample collection and heat-map accumulation) or RND on
/// the freshly encoded next state.
class IntrinsicObserver : public StepObserver {
 public:
  IntrinsicObserver(const env::StateEncoder& encoder, const env::Map& map,
                    SpatialCuriosity* curiosity, RndCuriosity* rnd,
                    std::vector<CuriositySample>* samples,
                    std::mutex& stats_mu, std::vector<double>& heatmap_sum,
                    std::vector<int64_t>& heatmap_count, int num_envs,
                    int num_workers)
      : encoder_(encoder),
        map_(map),
        curiosity_(curiosity),
        rnd_(rnd),
        samples_(samples),
        stats_mu_(stats_mu),
        heatmap_sum_(heatmap_sum),
        heatmap_count_(heatmap_count),
        from_(static_cast<size_t>(num_envs),
              std::vector<PositionObs>(static_cast<size_t>(num_workers))) {}

  void BeforeStep(int env_index, const env::Env& env,
                  const ActResult& /*act*/) override {
    if (curiosity_ == nullptr) return;
    std::vector<PositionObs>& from = from_[static_cast<size_t>(env_index)];
    for (size_t w = 0; w < from.size(); ++w) {
      from[w] = MakeObs(encoder_, map_, WorkerPos(env, static_cast<int>(w)));
    }
  }

  double IntrinsicReward(int env_index, const env::Env& env,
                         const ActResult& act,
                         const float* next_state) override {
    if (curiosity_ != nullptr) {
      std::vector<PositionObs>& from =
          from_[static_cast<size_t>(env_index)];
      const int num_workers = static_cast<int>(from.size());
      double r_int = 0.0;
      for (int w = 0; w < num_workers; ++w) {
        const PositionObs to = MakeObs(encoder_, map_, WorkerPos(env, w));
        const double r = curiosity_->IntrinsicReward(
            w, from[static_cast<size_t>(w)],
            act.moves[static_cast<size_t>(w)], to);
        r_int += r;
        samples_->push_back(CuriositySample{w, from[static_cast<size_t>(w)],
                                            act.moves[static_cast<size_t>(w)],
                                            to});
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          heatmap_sum_[static_cast<size_t>(
              from[static_cast<size_t>(w)].cell)] += r;
          ++heatmap_count_[static_cast<size_t>(
              from[static_cast<size_t>(w)].cell)];
        }
      }
      return r_int / num_workers;
    }
    if (rnd_ != nullptr) return rnd_->IntrinsicReward(next_state);
    return 0.0;
  }

 private:
  const env::StateEncoder& encoder_;
  const env::Map& map_;
  SpatialCuriosity* curiosity_;
  RndCuriosity* rnd_;
  std::vector<CuriositySample>* samples_;
  std::mutex& stats_mu_;
  std::vector<double>& heatmap_sum_;
  std::vector<int64_t>& heatmap_count_;
  std::vector<std::vector<PositionObs>> from_;
};

}  // namespace

ChiefEmployeeTrainer::ChiefEmployeeTrainer(const TrainerConfig& config,
                                           env::Map map)
    : config_(config),
      map_(std::move(map)),
      encoder_(config.encoder),
      barrier_(static_cast<size_t>(config.num_employees)) {
  CEWS_CHECK_GT(config_.num_employees, 0);
  CEWS_CHECK_GT(config_.episodes, 0);
  CEWS_CHECK_GT(config_.batch_size, 0);
  CEWS_CHECK_GT(config_.update_epochs, 0);
  CEWS_CHECK_GT(config_.envs_per_employee, 0);

  // Auto-fill dependent dimensions so callers cannot desynchronize them.
  config_.net.num_workers = static_cast<int>(map_.worker_spawns.size());
  config_.net.num_moves = config_.env.action_space.num_moves();
  config_.net.grid = config_.encoder.grid;
  config_.curiosity.num_cells = encoder_.NumCells();
  config_.curiosity.num_moves = config_.net.num_moves;
  config_.curiosity.num_workers = config_.net.num_workers;
  config_.rnd.state_size = encoder_.StateSize();

  curiosity_seed_ = config_.seed * 0x9E3779B9ULL + 17;
  rnd_seed_ = config_.seed * 0x9E3779B9ULL + 29;

  Rng rng(config_.seed);
  global_net_ = std::make_unique<PolicyNet>(config_.net, rng);
  ppo_optimizer_ =
      std::make_unique<nn::Adam>(global_net_->Parameters(), config_.ppo.lr);
  if (config_.intrinsic == IntrinsicMode::kSpatialCuriosity) {
    global_curiosity_ =
        std::make_unique<SpatialCuriosity>(config_.curiosity, curiosity_seed_);
    intrinsic_optimizer_ = std::make_unique<nn::Adam>(
        global_curiosity_->Parameters(), config_.curiosity.lr);
  } else if (config_.intrinsic == IntrinsicMode::kRnd) {
    global_rnd_ = std::make_unique<RndCuriosity>(config_.rnd, rnd_seed_);
    intrinsic_optimizer_ = std::make_unique<nn::Adam>(
        global_rnd_->Parameters(), config_.rnd.lr);
  }

  ppo_grad_buffer_.assign(
      static_cast<size_t>(nn::FlatSize(global_net_->Parameters())), 0.0f);
  if (global_curiosity_ != nullptr) {
    intrinsic_grad_buffer_.assign(
        static_cast<size_t>(nn::FlatSize(global_curiosity_->Parameters())),
        0.0f);
  } else if (global_rnd_ != nullptr) {
    intrinsic_grad_buffer_.assign(
        static_cast<size_t>(nn::FlatSize(global_rnd_->Parameters())), 0.0f);
  }

  episode_accum_.assign(static_cast<size_t>(config_.episodes),
                        EpisodeAccumulator{});
  heatmap_sum_.assign(static_cast<size_t>(encoder_.NumCells()), 0.0);
  heatmap_count_.assign(static_cast<size_t>(encoder_.NumCells()), 0);
}

ChiefEmployeeTrainer::~ChiefEmployeeTrainer() = default;

void ChiefEmployeeTrainer::ChiefApplyGradients() {
  // Load the summed employee gradients into the global models and step.
  // The buffers already hold the sums (Algorithm 2, lines 3-7).
  {
    const std::vector<nn::Tensor> params = global_net_->Parameters();
    nn::ZeroGradients(params);
    nn::AccumulateFlatGradients(params, ppo_grad_buffer_);
    nn::ClipGradByGlobalNorm(
        params, config_.ppo.max_grad_norm * config_.num_employees);
    ppo_optimizer_->Step();
    std::fill(ppo_grad_buffer_.begin(), ppo_grad_buffer_.end(), 0.0f);
  }
  if (intrinsic_optimizer_ != nullptr) {
    const std::vector<nn::Tensor> params =
        global_curiosity_ != nullptr ? global_curiosity_->Parameters()
                                     : global_rnd_->Parameters();
    nn::ZeroGradients(params);
    nn::AccumulateFlatGradients(params, intrinsic_grad_buffer_);
    intrinsic_optimizer_->Step();
    std::fill(intrinsic_grad_buffer_.begin(), intrinsic_grad_buffer_.end(),
              0.0f);
  }
}

void ChiefEmployeeTrainer::MaybeSnapshotHeatmap(int episode) {
  if (config_.heatmap_snapshot_every <= 0) return;
  if ((episode + 1) % config_.heatmap_snapshot_every != 0) return;
  HeatmapSnapshot snap;
  snap.episode = episode + 1;
  snap.cell_values.assign(heatmap_sum_.size(), 0.0);
  for (size_t i = 0; i < heatmap_sum_.size(); ++i) {
    if (heatmap_count_[i] > 0) {
      snap.cell_values[i] =
          heatmap_sum_[i] / static_cast<double>(heatmap_count_[i]);
    }
  }
  heatmap_snapshots_.push_back(std::move(snap));
  std::fill(heatmap_sum_.begin(), heatmap_sum_.end(), 0.0);
  std::fill(heatmap_count_.begin(), heatmap_count_.end(), 0);
}

void ChiefEmployeeTrainer::EmployeeLoop(int employee_id) {
  // Local models: the PPO weights are overwritten by the first parameter
  // copy; the curiosity model is seeded identically to the global one so
  // the *frozen* embedding matches across threads.
  PpoAgent agent(config_.net, config_.ppo,
                 config_.seed + static_cast<uint64_t>(employee_id) + 1000);
  std::unique_ptr<SpatialCuriosity> curiosity;
  std::unique_ptr<RndCuriosity> rnd;
  if (config_.intrinsic == IntrinsicMode::kSpatialCuriosity) {
    curiosity =
        std::make_unique<SpatialCuriosity>(config_.curiosity, curiosity_seed_);
  } else if (config_.intrinsic == IntrinsicMode::kRnd) {
    rnd = std::make_unique<RndCuriosity>(config_.rnd, rnd_seed_);
  }
  env::VecEnv vec(config_.env, map_, config_.envs_per_employee);
  Rng rng(config_.seed * 7919 + static_cast<uint64_t>(employee_id));
  std::vector<RewardNormalizer> normalizers(
      static_cast<size_t>(config_.envs_per_employee),
      RewardNormalizer(config_.ppo.gamma));

  std::vector<CuriositySample> curiosity_samples;
  IntrinsicObserver observer(encoder_, map_, curiosity.get(), rnd.get(),
                             &curiosity_samples, stats_mu_, heatmap_sum_,
                             heatmap_count_, vec.size(), vec.num_workers());

  VecRolloutOptions rollout_options;
  rollout_options.sparse_reward =
      config_.reward_mode == RewardMode::kSparse;
  rollout_options.add_intrinsic_to_reward = config_.add_intrinsic_to_reward;
  rollout_options.reward_scale = config_.reward_scale;

  auto copy_globals = [&]() {
    nn::CopyParameters(global_net_->Parameters(), agent.Parameters());
    if (curiosity != nullptr) {
      nn::CopyParameters(global_curiosity_->Parameters(),
                         curiosity->Parameters());
    } else if (rnd != nullptr) {
      nn::CopyParameters(global_rnd_->Parameters(), rnd->Parameters());
    }
  };
  copy_globals();

  TrainerPhaseMetrics& phase_metrics = TrainerMetrics();
  for (int episode = 0; episode < config_.episodes; ++episode) {
    // ---- Exploration (Algorithm 1, lines 4-15), via the shared
    // vectorized rollout: all envs_per_employee instances act through one
    // batched Forward per lockstep step. ----
    Stopwatch episode_watch;
    curiosity_samples.clear();

    VecRolloutResult rollout = RunVecRollout(
        agent.net(), vec, encoder_, rng, rollout_options, &observer,
        config_.normalize_rewards ? &normalizers : nullptr);
    const int64_t episode_steps = rollout.env_steps;
    // GAE per instance buffer — advantages must not bridge episodes.
    for (RolloutBuffer& b : rollout.buffers) {
      b.ComputeAdvantages(config_.ppo.gamma, config_.ppo.gae_lambda,
                          /*last_value=*/0.0f);
    }

    double ext_sum = 0.0, int_sum = 0.0;
    for (size_t i = 0; i < rollout.extrinsic_sums.size(); ++i) {
      ext_sum += rollout.extrinsic_sums[i];
      int_sum += rollout.intrinsic_sums[i];
    }

    // Record this employee's episode diagnostics (instance means, so the
    // accumulator keeps the legacy per-employee scale at any
    // envs_per_employee).
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      EpisodeAccumulator& acc =
          episode_accum_[static_cast<size_t>(episode)];
      acc.kappa += vec.MeanKappa();
      acc.xi += vec.MeanXi();
      acc.rho += vec.MeanRho();
      acc.extrinsic +=
          ext_sum / (config_.env.horizon * config_.envs_per_employee);
      acc.intrinsic +=
          int_sum / (config_.env.horizon * config_.envs_per_employee);
    }

    // All instance episodes train as one pool of transitions.
    RolloutBuffer buffer = MergeBuffers(std::move(rollout.buffers));

    // ---- Exploitation (Algorithm 1, lines 16-23) ----
    const std::vector<nn::Tensor> local_ppo_params = agent.Parameters();
    for (int k = 0; k < config_.update_epochs; ++k) {
      {
        CEWS_TRACE_SCOPE("trainer.learn");
        obs::ScopedTimerNs learn_timer(phase_metrics.learn_ns);
        // Draw one packed minibatch; every model trains from its flat
        // arrays (single gather per epoch instead of per-consumer index
        // loops).
        MiniBatch mb =
            buffer.SampleBatch(static_cast<size_t>(config_.batch_size), rng);

        // Curiosity/RND gradients. The RND predictor distills the minibatch
        // states directly (formerly a separately accumulated next-state
        // pool; s_{t+1} of step t is s_t of step t+1, so the training
        // distribution is the same up to the episode's boundary states).
        std::vector<float> intrinsic_flat;
        if (curiosity != nullptr && !curiosity_samples.empty()) {
          const std::vector<nn::Tensor> cparams = curiosity->Parameters();
          nn::ZeroGradients(cparams);
          nn::Tensor closs = curiosity->SampleLoss(
              curiosity_samples, static_cast<size_t>(config_.batch_size),
              rng);
          closs.Backward();
          intrinsic_flat = nn::FlattenGradients(cparams);
        } else if (rnd != nullptr) {
          const std::vector<nn::Tensor> rparams = rnd->Parameters();
          nn::ZeroGradients(rparams);
          nn::Tensor rloss = rnd->Loss(mb);
          rloss.Backward();
          intrinsic_flat = nn::FlattenGradients(rparams);
        }

        // PPO gradients on the same packed minibatch (adopts its arrays).
        // Employee 0 reports the loss gauge: one writer, no averaging race.
        LossStats loss_stats;
        nn::ZeroGradients(local_ppo_params);
        nn::Tensor loss = agent.ComputeLoss(
            std::move(mb), employee_id == 0 ? &loss_stats : nullptr);
        loss.Backward();
        if (employee_id == 0) {
          phase_metrics.loss->Set(loss_stats.total);
        }
        nn::ClipGradByGlobalNorm(local_ppo_params,
                                 config_.ppo.max_grad_norm);
        const std::vector<float> ppo_flat =
            nn::FlattenGradients(local_ppo_params);

        // Send gradients to the global buffers (Algorithm 1, line 20).
        {
          std::lock_guard<std::mutex> lock(buffer_mu_);
          for (size_t i = 0; i < ppo_flat.size(); ++i) {
            ppo_grad_buffer_[i] += ppo_flat[i];
          }
          for (size_t i = 0; i < intrinsic_flat.size(); ++i) {
            intrinsic_grad_buffer_[i] += intrinsic_flat[i];
          }
        }
      }

      // Wait for the chief to update the global models (lines 21-22), then
      // copy the fresh parameters.
      {
        CEWS_TRACE_SCOPE("trainer.barrier");
        obs::ScopedTimerNs barrier_timer(phase_metrics.barrier_ns);
        barrier_.ArriveAndWait([this]() { ChiefApplyGradients(); });
      }
      {
        CEWS_TRACE_SCOPE("trainer.sync");
        obs::ScopedTimerNs sync_timer(phase_metrics.sync_ns);
        copy_globals();
      }
    }

    // Heat-map snapshotting, checkpointing, and the episode-level metrics
    // are serial chief work done once per episode.
    {
      CEWS_TRACE_SCOPE("trainer.barrier");
      obs::ScopedTimerNs barrier_timer(phase_metrics.barrier_ns);
      barrier_.ArriveAndWait([this, episode, &phase_metrics]() {
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          MaybeSnapshotHeatmap(episode);
          const EpisodeAccumulator& acc =
              episode_accum_[static_cast<size_t>(episode)];
          const double inv_e = 1.0 / config_.num_employees;
          phase_metrics.episodes->Increment();
          phase_metrics.kappa->Set(acc.kappa * inv_e);
          phase_metrics.xi->Set(acc.xi * inv_e);
          phase_metrics.rho->Set(acc.rho * inv_e);
        }
        if (config_.checkpoint_every > 0 &&
            (episode + 1) % config_.checkpoint_every == 0) {
          const std::string path = config_.checkpoint_prefix +
                                   std::to_string(episode + 1) + ".bin";
          nn::SaveInfo info;
          const Status status =
              nn::SaveParameters(path, global_net_->Parameters(), &info);
          if (!status.ok()) {
            CEWS_LOG(Warning) << "checkpoint failed: " << status.ToString();
          } else {
            CEWS_LOG(Info) << "checkpoint -> " << path << " (" << info.bytes
                           << " bytes, crc32 " << std::hex << info.crc32
                           << ")";
          }
        }
      });
    }

    // Wall time covers the whole synchronized episode (rollout + updates +
    // barriers), so steps/s reflects delivered end-to-end throughput.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      EpisodeAccumulator& acc = episode_accum_[static_cast<size_t>(episode)];
      acc.wall += episode_watch.ElapsedSeconds();
      acc.steps += episode_steps;
    }
  }
}

TrainResult ChiefEmployeeTrainer::Train() {
  Stopwatch watch;
  // Size the shared intra-op kernel pool before any employee touches it.
  runtime::SetGlobalPoolThreads(
      runtime::ResolveNumThreads(config_.runtime_threads));
  std::unique_ptr<obs::StatsReporter> reporter;
  if (config_.heartbeat_seconds > 0.0) {
    reporter = std::make_unique<obs::StatsReporter>(config_.heartbeat_seconds);
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(config_.num_employees));
  for (int i = 0; i < config_.num_employees; ++i) {
    threads.emplace_back([this, i]() { EmployeeLoop(i); });
  }
  for (std::thread& t : threads) t.join();
  if (reporter != nullptr) reporter->Stop();

  TrainResult result;
  result.seconds = watch.ElapsedSeconds();
  result.history.reserve(static_cast<size_t>(config_.episodes));
  const double inv_e = 1.0 / config_.num_employees;
  for (int e = 0; e < config_.episodes; ++e) {
    const EpisodeAccumulator& acc = episode_accum_[static_cast<size_t>(e)];
    EpisodeRecord rec;
    rec.episode = e;
    rec.kappa = acc.kappa * inv_e;
    rec.xi = acc.xi * inv_e;
    rec.rho = acc.rho * inv_e;
    rec.extrinsic_reward = acc.extrinsic * inv_e;
    rec.intrinsic_reward = acc.intrinsic * inv_e;
    rec.wall_seconds = acc.wall * inv_e;
    if (rec.wall_seconds > 0.0) {
      rec.steps_per_sec = static_cast<double>(acc.steps) / rec.wall_seconds;
    }
    result.history.push_back(rec);
  }
  return result;
}

}  // namespace cews::agents
