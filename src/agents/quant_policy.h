// cews::agents — the int8 inference executor for the policy architecture.
//
// QuantPolicyForward replays PolicyNet::ForwardImpl's exact layer sequence
// (conv3x3-LN-ReLU x3 -> flatten -> FC-ReLU -> three linear heads) against
// a publish-time nn::quant::QuantizedParams bundle instead of fp32 tensors:
// every GEMM-shaped product (conv im2col forward, trunk FC, heads) runs on
// the packed int8 kernels (nn/gemm_int8.h) with per-output-channel weight
// scales, dynamic per-row activation scales (per im2col column for convs),
// int32 accumulation and fp32 dequantize + bias on output. LayerNorm and
// ReLU stay fp32 — they are O(n) epilogues whose precision anchors the
// activation statistics the next quantization step depends on.
//
// The bundle is immutable and shared: unlike the fp32 serve path (which
// copies a snapshot into a private per-worker net on epoch change), int8
// workers read the snapshot's QuantizedParams in place — hot-swap costs one
// shared_ptr pin, and a swap can never expose torn weights because a batch
// is served entirely by the bundle captured at dequeue time.
//
// Correctness is gated behaviorally, not bitwise: ActionAgreement* compares
// the quantized policy's argmax decisions (per worker, move and charge head)
// against the fp32 net's over a state set, and serving requires the match
// rate to clear a configured threshold (>= 99% over the scenario suite;
// tests/serve_quant_test.cc, the deploy loop's eval gate, and the
// `cews serve --precision int8` startup check all enforce it).
#ifndef CEWS_AGENTS_QUANT_POLICY_H_
#define CEWS_AGENTS_QUANT_POLICY_H_

#include <cstdint>
#include <vector>

#include "agents/policy_net.h"
#include "nn/quant.h"

namespace cews::agents {

/// One quantized forward pass worth of outputs (plain buffers — the int8
/// path has no autograd tensors to hand back).
struct QuantPolicyOutput {
  std::vector<float> move_logits;    ///< [batch * num_workers * num_moves].
  std::vector<float> charge_logits;  ///< [batch * num_workers * 2].
  std::vector<float> value;          ///< [batch].
};

/// Builds the policy's serving bundle: the serve-hot GEMM weights — the
/// three conv kernels and the trunk FC, which dominate forward cost — are
/// quantized per output channel; the head weights (move/charge/value) stay
/// dense fp32. The heads are tiny (n = W*moves, W*2, 1: a few percent of
/// forward FLOPs) and sit directly on the argmax decision, so quantizing
/// them buys nothing and costs agreement. `params` must be in
/// PolicyNet::Parameters() order (20 tensors, CHECKed).
nn::quant::QuantizedParams QuantizePolicyParams(
    const std::vector<nn::Tensor>& params);

/// Runs the int8 forward over `batch` stacked states (batch * in_channels *
/// grid * grid floats, the SamplePolicyBatch layout). `qp` must have been
/// built by QuantizePolicyParams from a parameter list in
/// PolicyNet::Parameters() order for this architecture (CHECKed).
/// Deterministic at any thread count: integer accumulation plus per-image
/// fp epilogues, both partition-invariant.
QuantPolicyOutput QuantPolicyForward(const PolicyNetConfig& config,
                                     const nn::quant::QuantizedParams& qp,
                                     const float* states, int batch);

/// Action-agreement tally between the fp32 net and the quantized bundle.
/// Every (instance, worker) contributes two decisions: the move-head argmax
/// and the charge-head argmax.
struct AgreementStats {
  int64_t decisions = 0;
  int64_t matched = 0;
  double rate() const {
    return decisions == 0 ? 1.0
                          : static_cast<double>(matched) /
                                static_cast<double>(decisions);
  }
};

/// Compares argmax decisions over `batch` stacked states. `net` provides
/// the fp32 reference; `qp` must be a bundle of the SAME parameters (the
/// caller typically quantized net.Parameters() or the published snapshot
/// the net was copied from).
AgreementStats ActionAgreementOnStates(const PolicyNet& net,
                                       const nn::quant::QuantizedParams& qp,
                                       const std::vector<float>& states,
                                       int batch);

}  // namespace cews::agents

#endif  // CEWS_AGENTS_QUANT_POLICY_H_
