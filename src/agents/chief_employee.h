// The chief-employee distributed computational architecture (Section V-A,
// Algorithms 1-2): synchronous employee threads roll out local environments
// with local model copies, compute gradients, and push them into two global
// gradient buffers (PPO + curiosity); the chief sums the buffers, steps the
// global Adam optimizers, and releases the employees to copy parameters back.
#ifndef CEWS_AGENTS_CHIEF_EMPLOYEE_H_
#define CEWS_AGENTS_CHIEF_EMPLOYEE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "agents/curiosity.h"
#include "agents/policy_net.h"
#include "agents/ppo.h"
#include "agents/rnd.h"
#include "common/barrier.h"
#include "env/env.h"
#include "env/state_encoder.h"
#include "nn/optimizer.h"

namespace cews::agents {

/// Which extrinsic reward the agent trains on (Fig. 5 compares all four
/// combinations of {dense, sparse} x {with, without curiosity}).
enum class RewardMode { kSparse, kDense };

/// Which intrinsic-reward module augments the extrinsic reward.
enum class IntrinsicMode { kNone, kSpatialCuriosity, kRnd };

/// Full training configuration.
struct TrainerConfig {
  /// Number of employee threads (Table II sweeps 1..16; paper picks 8).
  int num_employees = 8;
  /// Training episodes (each episode is synchronized across employees).
  int episodes = 200;
  /// Minibatch size per update round (Table II sweeps 50..500; paper: 250).
  int batch_size = 250;
  /// Update rounds K per episode (Algorithm 1, line 17).
  int update_epochs = 4;

  /// Intra-op worker threads for the NN kernel runtime
  /// (common/thread_pool.h), shared process-wide by all employees. 1 keeps
  /// kernels serial (default); 0 sizes the pool to the hardware cores. The
  /// CEWS_NUM_THREADS environment variable overrides either. Kernel results
  /// are bitwise-identical at any setting.
  int runtime_threads = 1;

  /// Environment instances each employee drives through the vectorized
  /// acting path (env::VecEnv + one batched Forward per lockstep step).
  /// 1 reproduces the legacy single-env employee bitwise; larger values
  /// collect envs_per_employee episodes per training episode and batch
  /// their action selection, which is where the intra-op kernel runtime
  /// pays off during rollouts.
  int envs_per_employee = 1;

  PolicyNetConfig net;
  PpoConfig ppo;

  IntrinsicMode intrinsic = IntrinsicMode::kSpatialCuriosity;
  CuriosityConfig curiosity;  // num_cells/num_moves/num_workers auto-filled
  RndConfig rnd;              // state_size auto-filled
  /// When false the intrinsic module is still trained and its values are
  /// recorded (heat maps), but the reward the agent optimizes excludes
  /// r^int. Used to visualize curiosity under DPPO (Fig. 9, bottom row).
  bool add_intrinsic_to_reward = true;

  /// Multiplies the stored training reward (extrinsic + intrinsic). Keeps
  /// discounted returns O(1) so the value head tracks them within a short
  /// training budget; metrics and reported rewards are unscaled.
  float reward_scale = 1.0f;

  /// When true, replaces the fixed reward_scale with adaptive scaling by
  /// the running std of the discounted return (reward_normalizer.h).
  bool normalize_rewards = false;

  RewardMode reward_mode = RewardMode::kSparse;
  env::EnvConfig env;
  env::StateEncoderConfig encoder;
  uint64_t seed = 1;

  /// Log a one-line training heartbeat (episodes/s, steps/s, loss, kappa,
  /// xi, rho, pool utilization) every this many seconds while Train() runs
  /// (obs/stats_reporter.h). <= 0 disables.
  double heartbeat_seconds = 0.0;

  /// Record a curiosity heat-map snapshot every this many episodes
  /// (0 disables; used by the Fig. 9 bench).
  int heatmap_snapshot_every = 0;

  /// Periodically save the global policy parameters for offline testing
  /// ("the parameters in DNNs are periodically saved", Section VI-D).
  /// 0 disables. Files are "<checkpoint_prefix><episode>.bin".
  int checkpoint_every = 0;
  std::string checkpoint_prefix = "cews_ckpt_";
};

/// Per-episode training diagnostics, averaged over employees.
struct EpisodeRecord {
  int episode = 0;
  double kappa = 0.0;
  double xi = 1.0;
  double rho = 0.0;
  double extrinsic_reward = 0.0;  // mean per step
  double intrinsic_reward = 0.0;  // mean per step
  double wall_seconds = 0.0;      // mean employee wall time for the episode
  double steps_per_sec = 0.0;     // total env steps (all employees) / wall
};

/// Mean intrinsic reward per visited cell over a training window (Fig. 9).
struct HeatmapSnapshot {
  int episode = 0;
  std::vector<double> cell_values;  // grid*grid, 0 where unvisited
};

/// Everything Train() produces.
struct TrainResult {
  std::vector<EpisodeRecord> history;
  double seconds = 0.0;  ///< Wall-clock training time (Fig. 3).
};

/// The synchronous distributed trainer. DRL-CEWS is this trainer with
/// sparse reward + spatial curiosity; the DPPO baseline is the same trainer
/// with dense reward and no intrinsic module.
class ChiefEmployeeTrainer {
 public:
  /// The map is copied into every employee's local environment so all
  /// employees train on the same scenario with independent stochasticity.
  ChiefEmployeeTrainer(const TrainerConfig& config, env::Map map);
  ~ChiefEmployeeTrainer();

  ChiefEmployeeTrainer(const ChiefEmployeeTrainer&) = delete;
  ChiefEmployeeTrainer& operator=(const ChiefEmployeeTrainer&) = delete;

  /// Runs the full synchronous training. Blocking; spawns
  /// config.num_employees threads.
  TrainResult Train();

  /// The global policy model (Section VI-D testing uses only this).
  PolicyNet& global_net() { return *global_net_; }
  const PolicyNet& global_net() const { return *global_net_; }

  /// Heat-map snapshots collected when heatmap_snapshot_every > 0.
  const std::vector<HeatmapSnapshot>& heatmap_snapshots() const {
    return heatmap_snapshots_;
  }

  const TrainerConfig& config() const { return config_; }

 private:
  struct EpisodeAccumulator {
    double kappa = 0.0, xi = 0.0, rho = 0.0;
    double extrinsic = 0.0, intrinsic = 0.0;
    double wall = 0.0;   ///< Summed employee wall seconds for the episode.
    int64_t steps = 0;   ///< Total env steps across employees.
  };

  void EmployeeLoop(int employee_id);
  /// Runs on the last barrier arriver: applies both gradient buffers.
  void ChiefApplyGradients();
  void MaybeSnapshotHeatmap(int episode);

  TrainerConfig config_;
  env::Map map_;
  env::StateEncoder encoder_;

  std::unique_ptr<PolicyNet> global_net_;
  std::unique_ptr<nn::Adam> ppo_optimizer_;
  std::unique_ptr<SpatialCuriosity> global_curiosity_;
  std::unique_ptr<RndCuriosity> global_rnd_;
  std::unique_ptr<nn::Adam> intrinsic_optimizer_;

  // Global gradient buffers (Fig. 1 center) and their lock.
  std::mutex buffer_mu_;
  std::vector<float> ppo_grad_buffer_;
  std::vector<float> intrinsic_grad_buffer_;

  Barrier barrier_;

  // Shared training diagnostics.
  std::mutex stats_mu_;
  std::vector<EpisodeAccumulator> episode_accum_;

  // Curiosity heat map (Fig. 9): per-cell sum and visit count in the
  // current snapshot window.
  std::vector<double> heatmap_sum_;
  std::vector<int64_t> heatmap_count_;
  std::vector<HeatmapSnapshot> heatmap_snapshots_;

  uint64_t curiosity_seed_ = 0;
  uint64_t rnd_seed_ = 0;
};

}  // namespace cews::agents

#endif  // CEWS_AGENTS_CHIEF_EMPLOYEE_H_
