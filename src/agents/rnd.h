// Random Network Distillation (Burda et al., ICLR'19), the state-of-the-art
// curiosity baseline compared against in Fig. 4: a frozen random target
// network embeds the next state; a trained predictor chases it; the
// prediction error is the intrinsic reward.
#ifndef CEWS_AGENTS_RND_H_
#define CEWS_AGENTS_RND_H_

#include <map>
#include <memory>
#include <vector>

#include "agents/rollout.h"
#include "common/rng.h"
#include "nn/graph.h"
#include "nn/module.h"

namespace cews::agents {

/// RND hyperparameters.
struct RndConfig {
  /// Flat size of an encoded state.
  int state_size = 1200;
  /// Hidden width of target and predictor MLPs.
  int hidden = 128;
  /// Output embedding dimension.
  int out_dim = 32;
  /// Intrinsic-reward scale (kept equal to the spatial model's eta).
  float eta = 0.3f;
  /// Learning rate when trained standalone.
  float lr = 1e-3f;
};

/// RND curiosity module over full encoded states.
class RndCuriosity {
 public:
  RndCuriosity(const RndConfig& config, uint64_t seed);

  /// Intrinsic reward for a (next) state: eta * ||pred - target||^2.
  double IntrinsicReward(const std::vector<float>& state) const;

  /// Same, over config().state_size floats at `state` — the batched acting
  /// path hands per-instance slices of one [N, ...] encode buffer.
  double IntrinsicReward(const float* state) const;

  /// Predictor training loss over a packed minibatch: consumes
  /// `batch.states` ([B * state_size], row-major) directly — the trainer
  /// hot path; no per-transition gather.
  nn::Tensor Loss(const MiniBatch& batch) const;

  /// Predictor training loss over a batch of state pointers (row-major
  /// [batch, state_size]); returns the graph for backward.
  nn::Tensor Loss(const std::vector<const std::vector<float>*>& states) const;

  /// Trainable parameters (predictor only).
  std::vector<nn::Tensor> Parameters() const;

  const RndConfig& config() const { return config_; }

 private:
  nn::Tensor TargetEmbedding(const nn::Tensor& x) const;

  /// One compiled predictor-loss graph (CEWS_NN_GRAPH=1) per batch size:
  /// both the frozen target's forward (recorded without a tape) and the
  /// predictor's forward replay against the rewritten state placeholder.
  struct LossGraph {
    nn::graph::GraphPtr graph;
    nn::Tensor x, loss;
  };

  RndConfig config_;
  std::unique_ptr<nn::Mlp> target_;     // frozen
  std::unique_ptr<nn::Mlp> predictor_;  // trained
  mutable std::map<nn::Index, LossGraph> loss_graphs_;
};

}  // namespace cews::agents

#endif  // CEWS_AGENTS_RND_H_
