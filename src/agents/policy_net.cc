#include "agents/policy_net.h"

#include "common/check.h"

namespace cews::agents {

PolicyNet::PolicyNet(const PolicyNetConfig& config, cews::Rng& rng)
    : config_(config) {
  CEWS_CHECK_GT(config.num_workers, 0);
  CEWS_CHECK_GT(config.num_moves, 1);
  trunk_ = std::make_unique<CnnTrunk>(config.TrunkConfig(), rng);
  // Small-gain init on the policy output layers keeps the initial policy
  // near-uniform (standard PPO practice); value head gain 1.
  move_head_ = std::make_unique<nn::Linear>(
      config.feature_dim,
      static_cast<nn::Index>(config.num_workers) * config.num_moves, rng,
      /*gain=*/0.01f);
  charge_head_ = std::make_unique<nn::Linear>(
      config.feature_dim, static_cast<nn::Index>(config.num_workers) * 2, rng,
      /*gain=*/0.01f);
  // Bias the charging decision off at init (~12% charge probability):
  // charging is only valid near stations, and a 50/50 initial coin flip
  // would waste half of the early exploration steps standing still.
  {
    nn::Tensor bias = charge_head_->Parameters()[1];
    for (int w = 0; w < config.num_workers; ++w) {
      bias.data()[w * 2 + 1] = -2.0f;
    }
  }
  value_head_ =
      std::make_unique<nn::Linear>(config.feature_dim, 1, rng, /*gain=*/1.0f);
}

PolicyOutput PolicyNet::Forward(const nn::Tensor& x) const {
  const nn::Index n = x.dim(0);
  nn::Tensor feature = trunk_->Forward(x);

  PolicyOutput out;
  out.feature = feature;
  out.move_logits =
      nn::Reshape(move_head_->Forward(feature),
                  {n, config_.num_workers, config_.num_moves});
  out.charge_logits =
      nn::Reshape(charge_head_->Forward(feature), {n, config_.num_workers, 2});
  out.value = nn::Reshape(value_head_->Forward(feature), {n});
  return out;
}

std::vector<nn::Tensor> PolicyNet::Parameters() const {
  std::vector<nn::Tensor> params = trunk_->Parameters();
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(move_head_.get()),
        static_cast<const nn::Module*>(charge_head_.get()),
        static_cast<const nn::Module*>(value_head_.get())}) {
    for (nn::Tensor t : m->Parameters()) params.push_back(t);
  }
  return params;
}

}  // namespace cews::agents
