#include "agents/policy_net.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "nn/graph.h"

namespace cews::agents {

namespace {

/// One compiled forward-only policy graph for the no-grad (serve/act) path.
/// `param_pin` keeps the net's first parameter alive so the cache key — the
/// parameter's impl address — can never be recycled into a different net
/// while the entry exists.
struct ServeGraph {
  nn::graph::GraphPtr graph;
  nn::Tensor x;
  PolicyOutput out;
  nn::Tensor param_pin;
};

}  // namespace

PolicyNet::PolicyNet(const PolicyNetConfig& config, cews::Rng& rng)
    : config_(config) {
  CEWS_CHECK_GT(config.num_workers, 0);
  CEWS_CHECK_GT(config.num_moves, 1);
  trunk_ = std::make_unique<CnnTrunk>(config.TrunkConfig(), rng);
  // Small-gain init on the policy output layers keeps the initial policy
  // near-uniform (standard PPO practice); value head gain 1.
  move_head_ = std::make_unique<nn::Linear>(
      config.feature_dim,
      static_cast<nn::Index>(config.num_workers) * config.num_moves, rng,
      /*gain=*/0.01f);
  charge_head_ = std::make_unique<nn::Linear>(
      config.feature_dim, static_cast<nn::Index>(config.num_workers) * 2, rng,
      /*gain=*/0.01f);
  // Bias the charging decision off at init (~12% charge probability):
  // charging is only valid near stations, and a 50/50 initial coin flip
  // would waste half of the early exploration steps standing still.
  {
    nn::Tensor bias = charge_head_->Parameters()[1];
    for (int w = 0; w < config.num_workers; ++w) {
      bias.data()[w * 2 + 1] = -2.0f;
    }
  }
  value_head_ =
      std::make_unique<nn::Linear>(config.feature_dim, 1, rng, /*gain=*/1.0f);
}

PolicyOutput PolicyNet::ForwardImpl(const nn::Tensor& x) const {
  const nn::Index n = x.dim(0);
  nn::Tensor feature = trunk_->Forward(x);

  PolicyOutput out;
  out.feature = feature;
  out.move_logits =
      nn::Reshape(move_head_->Forward(feature),
                  {n, config_.num_workers, config_.num_moves});
  out.charge_logits =
      nn::Reshape(charge_head_->Forward(feature), {n, config_.num_workers, 2});
  out.value = nn::Reshape(value_head_->Forward(feature), {n});
  return out;
}

PolicyOutput PolicyNet::Forward(const nn::Tensor& x) const {
  if (!nn::graph::GraphModeEnabled() || nn::GradModeEnabled() ||
      nn::graph::Recording()) {
    return ForwardImpl(x);
  }

  // No-grad graph path: one forward-only compiled graph per (net, batch
  // size) per thread, keyed on the net's first parameter so weight updates
  // applied in place (CopyParameters) flow into replays while a *different*
  // net never hits a stale entry.
  const nn::Index n = x.dim(0);
  const nn::Tensor first_param = trunk_->Parameters().front();
  const std::pair<const void*, nn::Index> key{
      static_cast<const void*>(first_param.impl().get()), n};
  static thread_local std::map<std::pair<const void*, nn::Index>, ServeGraph>
      cache;
  auto it = cache.find(key);
  if (it == cache.end()) {
    nn::graph::NoteCacheMiss();
    ServeGraph g;
    g.param_pin = first_param;
    g.x = nn::Tensor::FromData(
        x.shape(), std::vector<float>(x.data(), x.data() + x.numel()));
    nn::graph::BeginRecording();
    nn::graph::MarkPlaceholder(g.x);
    g.out = ForwardImpl(g.x);
    nn::graph::Retain(g.out.move_logits);
    nn::graph::Retain(g.out.charge_logits);
    nn::graph::Retain(g.out.value);
    nn::graph::Retain(g.out.feature);
    g.graph = nn::graph::EndRecording(nn::Tensor());
    it = cache.emplace(key, std::move(g)).first;
  } else {
    nn::graph::NoteCacheHit();
    ServeGraph& g = it->second;
    CEWS_CHECK_EQ(x.numel(), g.x.numel());
    std::copy(x.data(), x.data() + x.numel(), g.x.impl()->data.data());
    g.graph->Forward();
  }
  return it->second.out;
}

std::vector<nn::Tensor> PolicyNet::Parameters() const {
  std::vector<nn::Tensor> params = trunk_->Parameters();
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(move_head_.get()),
        static_cast<const nn::Module*>(charge_head_.get()),
        static_cast<const nn::Module*>(value_head_.get())}) {
    for (nn::Tensor t : m->Parameters()) params.push_back(t);
  }
  return params;
}

}  // namespace cews::agents
