// Phase telemetry shared by both trainers (chief-employee and async), so
// the synchronous and asynchronous architectures report metric-for-metric
// comparable numbers: the same four phase histograms (rollout / learn /
// sync / barrier), the same episode counter, and the same headline gauges
// the heartbeat reporter (obs/stats_reporter.h) reads.
#ifndef CEWS_AGENTS_TRAINER_OBS_H_
#define CEWS_AGENTS_TRAINER_OBS_H_

#include "obs/metrics.h"

namespace cews::agents {

struct TrainerPhaseMetrics {
  obs::Histogram* const rollout_ns = obs::GetHistogram("trainer.rollout_ns");
  /// Batched action selection (EncodeBatch + Forward + sample) inside the
  /// rollout — the phase the vectorized acting path accelerates.
  obs::Histogram* const act_ns = obs::GetHistogram("trainer.act_ns");
  obs::Histogram* const learn_ns = obs::GetHistogram("trainer.learn_ns");
  obs::Histogram* const sync_ns = obs::GetHistogram("trainer.sync_ns");
  obs::Histogram* const barrier_ns = obs::GetHistogram("trainer.barrier_ns");
  obs::Counter* const episodes = obs::GetCounter("train.episodes");
  /// Env transitions produced / batched Forward calls taken by the acting
  /// path; their ratio is the delivered acting batch size.
  obs::Counter* const act_env_steps = obs::GetCounter("act.env_steps");
  obs::Counter* const act_batches = obs::GetCounter("act.batches");
  obs::Gauge* const loss = obs::GetGauge("train.loss");
  obs::Gauge* const kappa = obs::GetGauge("train.kappa");
  obs::Gauge* const xi = obs::GetGauge("train.xi");
  obs::Gauge* const rho = obs::GetGauge("train.rho");
};

/// Leaked singleton: metric handles stay valid on employee threads that
/// outlive main()'s static teardown order.
inline TrainerPhaseMetrics& TrainerMetrics() {
  static TrainerPhaseMetrics* const m = new TrainerPhaseMetrics;
  return *m;
}

}  // namespace cews::agents

#endif  // CEWS_AGENTS_TRAINER_OBS_H_
