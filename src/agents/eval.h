// Policy sampling and testing-process evaluation (Section VI-D): run the
// trained policy network alone against an environment and report the three
// metrics.
#ifndef CEWS_AGENTS_EVAL_H_
#define CEWS_AGENTS_EVAL_H_

#include <cstdint>
#include <vector>

#include "agents/policy_net.h"
#include "agents/ppo.h"
#include "common/rng.h"
#include "env/env.h"
#include "env/state_encoder.h"
#include "env/vec_env.h"

namespace cews::agents {

/// Samples per-worker actions from the policy network for one state.
/// With `deterministic` the mode of each distribution is taken.
ActResult SamplePolicy(const PolicyNet& net, const std::vector<float>& state,
                       Rng& rng, bool deterministic);

/// Batched action selection: one Forward over `batch` stacked states
/// (`states` holds batch * StateSize floats, [N, C, H, W] row-major, e.g.
/// from StateEncoder::EncodeBatch), then per-instance sampling from the
/// factored heads. Samples are drawn instance-by-instance in index order,
/// worker-by-worker, move head before charge head — exactly the draw order
/// of `batch` consecutive SamplePolicy calls, so with batch == 1 the result
/// is bitwise-identical to SamplePolicy on the same Rng state.
///
/// `move_masks` (optional) points at batch * W * num_moves 0/1 flags,
/// instance-major (env::VecEnv::MoveValidityMasks layout); masked-out moves
/// have their logits forced to -1e9 before sampling and log-prob
/// computation, confining each worker's route head to its valid options.
/// The legacy single-env trainers never masked, so passing nullptr keeps
/// the historical behavior.
std::vector<ActResult> SamplePolicyBatch(const PolicyNet& net,
                                         const std::vector<float>& states,
                                         int batch, Rng& rng,
                                         bool deterministic = false,
                                         const uint8_t* move_masks = nullptr);

/// One instance's outcome from DecidePolicyBatch: the sampled action plus
/// the exact logits it was drawn from — what an inference service returns
/// to its clients alongside the decision.
struct PolicyDecision {
  ActResult act;
  /// Post-masking route logits, [num_workers * num_moves] (masked-out
  /// entries are the -1e9 sentinel actually used for sampling).
  std::vector<float> move_logits;
  /// Charging logits, [num_workers * 2].
  std::vector<float> charge_logits;
};

/// Serving variant of SamplePolicyBatch: one Forward over `batch` stacked
/// states on caller-provided encodings, with a per-instance deterministic
/// flag (`deterministic_flags`, `batch` 0/1 bytes, nullptr = all sampled)
/// so independently-submitted requests can share a batch, and the (masked)
/// logits copied out per instance. Draw order matches SamplePolicyBatch:
/// instances in index order, worker-by-worker, move head before charge
/// head; deterministic instances consume no randomness.
std::vector<PolicyDecision> DecidePolicyBatch(
    const PolicyNet& net, const std::vector<float>& states, int batch,
    Rng& rng, const uint8_t* deterministic_flags = nullptr,
    const uint8_t* move_masks = nullptr);

/// The sampling half of DecidePolicyBatch, operating on raw logit/value
/// buffers instead of a net's forward output: `move_logits` holds
/// batch * W * num_moves floats, `charge_logits` batch * W * 2, `values`
/// batch. Draw order, masking, and Rng consumption are exactly
/// DecidePolicyBatch's (which delegates here) — the int8 serving path feeds
/// QuantPolicyForward's buffers through this so a precision switch changes
/// only the forward arithmetic, never the decision protocol.
std::vector<PolicyDecision> DecideFromLogits(
    const PolicyNetConfig& cfg, const float* move_logits,
    const float* charge_logits, const float* values, int batch, Rng& rng,
    const uint8_t* deterministic_flags = nullptr,
    const uint8_t* move_masks = nullptr);

/// End-of-episode metrics of one evaluation run.
struct EvalResult {
  double kappa = 0.0;  ///< Average data collection ratio (Eqn 4).
  double xi = 1.0;     ///< Average remaining data ratio (Eqn 5).
  double rho = 0.0;    ///< Energy efficiency (Eqn 6).
  double mean_sparse_reward = 0.0;
  double mean_dense_reward = 0.0;
};

/// Resets `env` and runs one full episode with the policy (Section VI-D:
/// only the policy network is used at test time).
EvalResult EvaluatePolicy(const PolicyNet& net, env::Env& env,
                          const env::StateEncoder& encoder, Rng& rng,
                          bool deterministic = false);

/// Averages EvaluatePolicy over `episodes` runs.
EvalResult EvaluatePolicyAveraged(const PolicyNet& net, env::Env& env,
                                  const env::StateEncoder& encoder, Rng& rng,
                                  int episodes, bool deterministic = false);

/// Vectorized evaluation: resets `vec` and runs every instance to episode
/// end through the batched acting path (EncodeBatch + SamplePolicyBatch),
/// returning one EvalResult per instance in index order. Instances that
/// finish early drop out of the batch; sampling always walks the still-live
/// instances in index order, so with vec.size() == 1 the run consumes the
/// Rng identically to EvaluatePolicy. Requires auto_reset off.
std::vector<EvalResult> EvaluatePolicyVec(const PolicyNet& net,
                                          env::VecEnv& vec,
                                          const env::StateEncoder& encoder,
                                          Rng& rng,
                                          bool deterministic = false);

}  // namespace cews::agents

#endif  // CEWS_AGENTS_EVAL_H_
