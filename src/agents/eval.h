// Policy sampling and testing-process evaluation (Section VI-D): run the
// trained policy network alone against an environment and report the three
// metrics.
#ifndef CEWS_AGENTS_EVAL_H_
#define CEWS_AGENTS_EVAL_H_

#include "agents/policy_net.h"
#include "agents/ppo.h"
#include "common/rng.h"
#include "env/env.h"
#include "env/state_encoder.h"

namespace cews::agents {

/// Samples per-worker actions from the policy network for one state.
/// With `deterministic` the mode of each distribution is taken.
ActResult SamplePolicy(const PolicyNet& net, const std::vector<float>& state,
                       Rng& rng, bool deterministic);

/// End-of-episode metrics of one evaluation run.
struct EvalResult {
  double kappa = 0.0;  ///< Average data collection ratio (Eqn 4).
  double xi = 1.0;     ///< Average remaining data ratio (Eqn 5).
  double rho = 0.0;    ///< Energy efficiency (Eqn 6).
  double mean_sparse_reward = 0.0;
  double mean_dense_reward = 0.0;
};

/// Resets `env` and runs one full episode with the policy (Section VI-D:
/// only the policy network is used at test time).
EvalResult EvaluatePolicy(const PolicyNet& net, env::Env& env,
                          const env::StateEncoder& encoder, Rng& rng,
                          bool deterministic = false);

/// Averages EvaluatePolicy over `episodes` runs.
EvalResult EvaluatePolicyAveraged(const PolicyNet& net, env::Env& env,
                                  const env::StateEncoder& encoder, Rng& rng,
                                  int episodes, bool deterministic = false);

}  // namespace cews::agents

#endif  // CEWS_AGENTS_EVAL_H_
