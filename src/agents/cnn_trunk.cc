#include "agents/cnn_trunk.h"

#include "common/check.h"
#include "nn/ops.h"

namespace cews::agents {

namespace {
/// Output side length of a 3x3 conv with the given stride and padding 1.
nn::Index ConvOut(nn::Index in, int stride) {
  return (in + 2 * 1 - 3) / stride + 1;
}
}  // namespace

CnnTrunk::CnnTrunk(const CnnTrunkConfig& config, cews::Rng& rng)
    : config_(config) {
  CEWS_CHECK_GT(config.grid, 3);
  CEWS_CHECK_GT(config.feature_dim, 0);
  conv1_ = std::make_unique<nn::Conv2dLayer>(config.in_channels,
                                             config.conv1_channels, 3,
                                             /*stride=*/1, /*padding=*/1, rng);
  conv2_ = std::make_unique<nn::Conv2dLayer>(config.conv1_channels,
                                             config.conv2_channels, 3,
                                             /*stride=*/2, /*padding=*/1, rng);
  conv3_ = std::make_unique<nn::Conv2dLayer>(config.conv2_channels,
                                             config.conv3_channels, 3,
                                             /*stride=*/2, /*padding=*/1, rng);
  const nn::Index s1 = ConvOut(config.grid, 1);
  const nn::Index s2 = ConvOut(s1, 2);
  const nn::Index s3 = ConvOut(s2, 2);
  CEWS_CHECK_GE(s3, 1);
  ln1_ = std::make_unique<nn::LayerNorm>(config.conv1_channels * s1 * s1);
  ln2_ = std::make_unique<nn::LayerNorm>(config.conv2_channels * s2 * s2);
  ln3_ = std::make_unique<nn::LayerNorm>(config.conv3_channels * s3 * s3);
  flat_after_conv_ = config.conv3_channels * s3 * s3;
  fc_ = std::make_unique<nn::Linear>(flat_after_conv_, config.feature_dim,
                                     rng);
}

nn::Tensor CnnTrunk::Forward(const nn::Tensor& x) const {
  CEWS_CHECK_EQ(x.ndim(), 4);
  const nn::Index n = x.dim(0);
  // Each conv block's ReLU is a gradient-checkpoint boundary (nn/graph.h):
  // under CEWS_NN_GRAPH=1 + CEWS_NN_CKPT=1 the big pre-flatten activations
  // between boundaries are dropped after forward and recomputed during
  // backward. Identity everywhere else.
  nn::Tensor h = conv1_->Forward(x);
  h = nn::Checkpoint(nn::Relu(ln1_->Forward(h)));
  h = conv2_->Forward(h);
  h = nn::Checkpoint(nn::Relu(ln2_->Forward(h)));
  h = conv3_->Forward(h);
  h = nn::Checkpoint(nn::Relu(ln3_->Forward(h)));
  h = nn::Reshape(h, {n, flat_after_conv_});
  return nn::Relu(fc_->Forward(h));
}

std::vector<nn::Tensor> CnnTrunk::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(conv1_.get()),
        static_cast<const nn::Module*>(ln1_.get()),
        static_cast<const nn::Module*>(conv2_.get()),
        static_cast<const nn::Module*>(ln2_.get()),
        static_cast<const nn::Module*>(conv3_.get()),
        static_cast<const nn::Module*>(ln3_.get()),
        static_cast<const nn::Module*>(fc_.get())}) {
    for (nn::Tensor t : m->Parameters()) params.push_back(t);
  }
  return params;
}

}  // namespace cews::agents
