// The shared acting core of both trainers (chief-employee and async): one
// employee drives `envs_per_employee` environments through the vectorized
// acting path — EncodeBatch over all instances, a single batched
// SamplePolicyBatch Forward, lockstep VecEnv::Step — and fills one
// RolloutBuffer per instance. The trainers keep their own learn/sync
// semantics (PPO minibatches + gradient barrier vs V-trace + lock-free
// push); everything upstream of "learn" lives here so the rollout skeleton
// exists exactly once.
//
// Determinism contract: with one environment the core consumes the Rng in
// exactly the legacy single-env order (encode, sample move-then-charge per
// worker, step), so envs_per_employee=1 reproduces the pre-vectorization
// trainers bitwise. With N > 1 instances the per-step order is
// instance-major: all N states are encoded and sampled as one batch, then
// instances step in index order.
//
// Execution backend: with CEWS_NN_GRAPH=1 the nn layer compiles each
// (net, batch-shape) pair it sees into an expression graph (nn/graph.h) —
// the batched acting forward here and the trainers' PPO/curiosity/RND loss
// builds replay compiled graphs instead of re-taping, bitwise-identically.
// Nothing in this file changes; the caches live inside PolicyNet, PpoAgent,
// SpatialCuriosity and RndCuriosity, one per employee thread.
#ifndef CEWS_AGENTS_TRAINER_CORE_H_
#define CEWS_AGENTS_TRAINER_CORE_H_

#include <cstdint>
#include <vector>

#include "agents/policy_net.h"
#include "agents/ppo.h"
#include "agents/reward_normalizer.h"
#include "agents/rollout.h"
#include "common/rng.h"
#include "env/state_encoder.h"
#include "env/vec_env.h"

namespace cews::agents {

/// Reward assembly knobs of one vectorized rollout (the trainer-config
/// slice RunVecRollout needs).
struct VecRolloutOptions {
  /// Extrinsic reward channel (sparse Eqn 7 vs dense shaping).
  bool sparse_reward = true;
  /// Adds the observer's intrinsic reward into the stored training reward
  /// (r = r^ext + r^int, Eqn 10). The observer still runs when false so
  /// intrinsic modules keep training/recording (Fig. 9 bottom row).
  bool add_intrinsic_to_reward = true;
  /// Fixed multiplier on the stored reward (ignored when normalizers are
  /// supplied).
  float reward_scale = 1.0f;
};

/// Per-step hook for intrinsic-reward modules (spatial curiosity, RND).
/// BeforeStep fires on every instance in index order before the lockstep
/// VecEnv::Step; IntrinsicReward fires after, with the freshly encoded
/// next state of that instance.
class StepObserver {
 public:
  virtual ~StepObserver() = default;

  /// Instance `env_index` is about to step with `act` (capture "from"
  /// positions here).
  virtual void BeforeStep(int env_index, const env::Env& env,
                          const ActResult& act) {
    (void)env_index;
    (void)env;
    (void)act;
  }

  /// Intrinsic reward r^int for the step instance `env_index` just took;
  /// `next_state` points at its StateSize() freshly encoded floats.
  virtual double IntrinsicReward(int env_index, const env::Env& env,
                                 const ActResult& act,
                                 const float* next_state) {
    (void)env_index;
    (void)env;
    (void)act;
    (void)next_state;
    return 0.0;
  }
};

/// Everything one vectorized rollout produced.
struct VecRolloutResult {
  /// One episode buffer per instance, index-aligned with vec.env(i).
  /// Advantages are NOT computed (GAE vs V-trace is the trainer's call).
  std::vector<RolloutBuffer> buffers;
  /// Per-instance summed extrinsic / intrinsic reward over the episode.
  std::vector<double> extrinsic_sums;
  std::vector<double> intrinsic_sums;
  /// Total env steps across all instances.
  int64_t env_steps = 0;
};

/// Rolls every instance of `vec` through one full episode with the batched
/// acting path. Resets `vec` first; requires auto_reset off (the uniform
/// horizon makes all instances finish together). `normalizers`, when
/// non-null, must hold one RewardNormalizer per instance and replaces the
/// fixed reward_scale with adaptive scaling (each instance keeps its own
/// running-return statistics); EndEpisode() is called on each at the end.
/// `observer` may be null (no intrinsic reward).
VecRolloutResult RunVecRollout(const PolicyNet& net, env::VecEnv& vec,
                               const env::StateEncoder& encoder, Rng& rng,
                               const VecRolloutOptions& options,
                               StepObserver* observer = nullptr,
                               std::vector<RewardNormalizer>* normalizers =
                                   nullptr);

/// Concatenates `buffers` (with advantages already computed) into
/// buffers[0] and returns it; single-buffer input is returned untouched,
/// keeping the envs_per_employee=1 path allocation- and bitwise-identical
/// to the legacy single-buffer flow.
RolloutBuffer MergeBuffers(std::vector<RolloutBuffer> buffers);

}  // namespace cews::agents

#endif  // CEWS_AGENTS_TRAINER_CORE_H_
