// Online reward normalization: scales rewards by the running standard
// deviation of the discounted return estimate (the standard PPO trick),
// an adaptive alternative to TrainerConfig::reward_scale.
#ifndef CEWS_AGENTS_REWARD_NORMALIZER_H_
#define CEWS_AGENTS_REWARD_NORMALIZER_H_

#include <cmath>
#include <cstdint>

namespace cews::agents {

/// Welford's online mean/variance accumulator.
class RunningStat {
 public:
  /// Feeds one observation.
  void Push(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  int64_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Population variance; 0 with fewer than two observations.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  double stddev() const { return std::sqrt(variance()); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Normalizes rewards by the running std of a discounted return proxy
/// R_t = gamma R_{t-1} + r_t (Engstrom et al.'s "reward scaling").
class RewardNormalizer {
 public:
  explicit RewardNormalizer(float gamma) : gamma_(gamma) {}

  /// Feeds the raw reward, returns the normalized one. Until enough data
  /// has accumulated (first few samples), returns the raw reward.
  float Normalize(float reward) {
    running_return_ = gamma_ * running_return_ + reward;
    stat_.Push(running_return_);
    const double std = stat_.stddev();
    if (stat_.count() < 8 || std < 1e-6) return reward;
    return static_cast<float>(reward / std);
  }

  /// Resets the per-episode discounted return (call at episode boundaries);
  /// the variance statistics persist across episodes.
  void EndEpisode() { running_return_ = 0.0; }

  const RunningStat& stat() const { return stat_; }

 private:
  float gamma_;
  double running_return_ = 0.0;
  RunningStat stat_;
};

}  // namespace cews::agents

#endif  // CEWS_AGENTS_REWARD_NORMALIZER_H_
