#include "agents/eval.h"

#include <cmath>

#include "common/check.h"

namespace cews::agents {

namespace {

int SampleFromLogits(const float* logits, int n, Rng& rng,
                     bool deterministic) {
  int best = 0;
  float mx = logits[0];
  for (int i = 1; i < n; ++i) {
    if (logits[i] > mx) {
      mx = logits[i];
      best = i;
    }
  }
  if (deterministic) return best;
  std::vector<double> weights(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    weights[static_cast<size_t>(i)] = std::exp(logits[i] - mx);
  }
  return static_cast<int>(rng.Categorical(weights));
}

float LogProbOf(const float* logits, int n, int k) {
  float mx = logits[0];
  for (int i = 1; i < n; ++i) mx = std::max(mx, logits[i]);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += std::exp(logits[i] - mx);
  return logits[k] - mx - static_cast<float>(std::log(sum));
}

/// Samples every worker of one instance from its logit rows, accumulating
/// the joint log-prob into `result`. `masks` (nullable) uses
/// `masked_scratch` (num_moves floats) to apply the -1e9 sentinel without
/// touching the forward output; draw order is the SamplePolicy contract
/// (per worker: move head, then charge head).
void SampleWorkers(const PolicyNetConfig& cfg, const float* move_logits,
                   const float* charge_logits, const uint8_t* masks,
                   float* masked_scratch, Rng& rng, bool deterministic,
                   ActResult& result) {
  float log_prob = 0.0f;
  for (int w = 0; w < cfg.num_workers; ++w) {
    const float* ml = move_logits + w * cfg.num_moves;
    if (masks != nullptr) {
      const uint8_t* mask = masks + w * cfg.num_moves;
      for (int m = 0; m < cfg.num_moves; ++m) {
        masked_scratch[m] = mask[m] ? ml[m] : -1e9f;
      }
      ml = masked_scratch;
    }
    const int move = SampleFromLogits(ml, cfg.num_moves, rng, deterministic);
    log_prob += LogProbOf(ml, cfg.num_moves, move);
    const float* cl = charge_logits + w * 2;
    const int charge = SampleFromLogits(cl, 2, rng, deterministic);
    log_prob += LogProbOf(cl, 2, charge);
    result.moves.push_back(move);
    result.charges.push_back(charge);
    result.actions.push_back(env::WorkerAction{move, charge == 1});
  }
  result.log_prob = log_prob;
}

}  // namespace

ActResult SamplePolicy(const PolicyNet& net, const std::vector<float>& state,
                       Rng& rng, bool deterministic) {
  std::vector<ActResult> results =
      SamplePolicyBatch(net, state, /*batch=*/1, rng, deterministic);
  return std::move(results.front());
}

std::vector<ActResult> SamplePolicyBatch(const PolicyNet& net,
                                         const std::vector<float>& states,
                                         int batch, Rng& rng,
                                         bool deterministic,
                                         const uint8_t* move_masks) {
  nn::NoGradGuard no_grad;
  const PolicyNetConfig& cfg = net.config();
  CEWS_CHECK_GT(batch, 0);
  CEWS_CHECK_EQ(static_cast<int>(states.size()),
                batch * cfg.in_channels * cfg.grid * cfg.grid);
  const nn::Tensor x = nn::Tensor::FromData(
      {batch, cfg.in_channels, cfg.grid, cfg.grid}, states);
  const PolicyOutput out = net.Forward(x);

  const float* move_logits = out.move_logits.data();
  const float* charge_logits = out.charge_logits.data();
  const float* values = out.value.data();
  const int per_env_moves = cfg.num_workers * cfg.num_moves;

  // Scratch for masked logits; untouched (and unallocated) when unmasked so
  // the unmasked batch-1 path stays bitwise-identical to the legacy
  // SamplePolicy arithmetic.
  std::vector<float> masked;
  if (move_masks != nullptr) {
    masked.resize(static_cast<size_t>(cfg.num_moves));
  }

  std::vector<ActResult> results(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    ActResult& result = results[static_cast<size_t>(i)];
    result.value = values[i];
    SampleWorkers(cfg, move_logits + i * per_env_moves,
                  charge_logits + i * cfg.num_workers * 2,
                  move_masks != nullptr ? move_masks + i * per_env_moves
                                        : nullptr,
                  masked.data(), rng, deterministic, result);
  }
  return results;
}

std::vector<PolicyDecision> DecidePolicyBatch(
    const PolicyNet& net, const std::vector<float>& states, int batch,
    Rng& rng, const uint8_t* deterministic_flags,
    const uint8_t* move_masks) {
  nn::NoGradGuard no_grad;
  const PolicyNetConfig& cfg = net.config();
  CEWS_CHECK_GT(batch, 0);
  CEWS_CHECK_EQ(static_cast<int>(states.size()),
                batch * cfg.in_channels * cfg.grid * cfg.grid);
  const nn::Tensor x = nn::Tensor::FromData(
      {batch, cfg.in_channels, cfg.grid, cfg.grid}, states);
  const PolicyOutput out = net.Forward(x);
  return DecideFromLogits(cfg, out.move_logits.data(),
                          out.charge_logits.data(), out.value.data(), batch,
                          rng, deterministic_flags, move_masks);
}

std::vector<PolicyDecision> DecideFromLogits(
    const PolicyNetConfig& cfg, const float* move_logits,
    const float* charge_logits, const float* values, int batch, Rng& rng,
    const uint8_t* deterministic_flags, const uint8_t* move_masks) {
  CEWS_CHECK_GT(batch, 0);
  const int per_env_moves = cfg.num_workers * cfg.num_moves;
  const int per_env_charges = cfg.num_workers * 2;

  std::vector<PolicyDecision> decisions(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    PolicyDecision& d = decisions[static_cast<size_t>(i)];
    // Masking is applied directly into the returned copy, so the logits a
    // client sees are the exact values the action was sampled from.
    d.move_logits.assign(move_logits + i * per_env_moves,
                         move_logits + (i + 1) * per_env_moves);
    if (move_masks != nullptr) {
      const uint8_t* mask = move_masks + i * per_env_moves;
      for (int m = 0; m < per_env_moves; ++m) {
        if (!mask[m]) d.move_logits[static_cast<size_t>(m)] = -1e9f;
      }
    }
    d.charge_logits.assign(charge_logits + i * per_env_charges,
                           charge_logits + (i + 1) * per_env_charges);
    d.act.value = values[i];
    const bool deterministic =
        deterministic_flags != nullptr && deterministic_flags[i] != 0;
    SampleWorkers(cfg, d.move_logits.data(), d.charge_logits.data(),
                  /*masks=*/nullptr, /*masked_scratch=*/nullptr, rng,
                  deterministic, d.act);
  }
  return decisions;
}

EvalResult EvaluatePolicy(const PolicyNet& net, env::Env& env,
                          const env::StateEncoder& encoder, Rng& rng,
                          bool deterministic) {
  env.Reset();
  EvalResult result;
  int steps = 0;
  while (!env.Done()) {
    const std::vector<float> state = encoder.Encode(env);
    const ActResult act = SamplePolicy(net, state, rng, deterministic);
    const env::StepResult step = env.Step(act.actions);
    result.mean_sparse_reward += step.sparse_reward;
    result.mean_dense_reward += step.dense_reward;
    ++steps;
  }
  if (steps > 0) {
    result.mean_sparse_reward /= steps;
    result.mean_dense_reward /= steps;
  }
  result.kappa = env.Kappa();
  result.xi = env.Xi();
  result.rho = env.Rho();
  return result;
}

EvalResult EvaluatePolicyAveraged(const PolicyNet& net, env::Env& env,
                                  const env::StateEncoder& encoder, Rng& rng,
                                  int episodes, bool deterministic) {
  CEWS_CHECK_GT(episodes, 0);
  EvalResult total;
  total.xi = 0.0;
  for (int e = 0; e < episodes; ++e) {
    const EvalResult r = EvaluatePolicy(net, env, encoder, rng, deterministic);
    total.kappa += r.kappa;
    total.xi += r.xi;
    total.rho += r.rho;
    total.mean_sparse_reward += r.mean_sparse_reward;
    total.mean_dense_reward += r.mean_dense_reward;
  }
  total.kappa /= episodes;
  total.xi /= episodes;
  total.rho /= episodes;
  total.mean_sparse_reward /= episodes;
  total.mean_dense_reward /= episodes;
  return total;
}

std::vector<EvalResult> EvaluatePolicyVec(const PolicyNet& net,
                                          env::VecEnv& vec,
                                          const env::StateEncoder& encoder,
                                          Rng& rng, bool deterministic) {
  CEWS_CHECK(!vec.auto_reset())
      << "EvaluatePolicyVec runs bounded episodes; build the VecEnv with "
         "auto_reset off";
  vec.Reset();
  const int n = vec.size();
  std::vector<EvalResult> results(static_cast<size_t>(n));
  std::vector<int> steps(static_cast<size_t>(n), 0);

  std::vector<const env::Env*> live;
  std::vector<int> live_index;
  while (!vec.AllDone()) {
    live.clear();
    live_index.clear();
    for (int i = 0; i < n; ++i) {
      if (!vec.env(i).Done()) {
        live.push_back(&vec.env(i));
        live_index.push_back(i);
      }
    }
    const std::vector<float> states = encoder.EncodeBatch(live);
    const std::vector<ActResult> acts = SamplePolicyBatch(
        net, states, static_cast<int>(live.size()), rng, deterministic);
    for (size_t k = 0; k < live_index.size(); ++k) {
      const int i = live_index[k];
      const env::StepResult step = vec.env(i).Step(acts[k].actions);
      results[static_cast<size_t>(i)].mean_sparse_reward +=
          step.sparse_reward;
      results[static_cast<size_t>(i)].mean_dense_reward += step.dense_reward;
      ++steps[static_cast<size_t>(i)];
    }
  }
  for (int i = 0; i < n; ++i) {
    EvalResult& r = results[static_cast<size_t>(i)];
    if (steps[static_cast<size_t>(i)] > 0) {
      r.mean_sparse_reward /= steps[static_cast<size_t>(i)];
      r.mean_dense_reward /= steps[static_cast<size_t>(i)];
    }
    r.kappa = vec.env(i).Kappa();
    r.xi = vec.env(i).Xi();
    r.rho = vec.env(i).Rho();
  }
  return results;
}

}  // namespace cews::agents
