#include "agents/eval.h"

#include <cmath>

#include "common/check.h"

namespace cews::agents {

namespace {

int SampleFromLogits(const float* logits, int n, Rng& rng,
                     bool deterministic) {
  int best = 0;
  float mx = logits[0];
  for (int i = 1; i < n; ++i) {
    if (logits[i] > mx) {
      mx = logits[i];
      best = i;
    }
  }
  if (deterministic) return best;
  std::vector<double> weights(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    weights[static_cast<size_t>(i)] = std::exp(logits[i] - mx);
  }
  return static_cast<int>(rng.Categorical(weights));
}

float LogProbOf(const float* logits, int n, int k) {
  float mx = logits[0];
  for (int i = 1; i < n; ++i) mx = std::max(mx, logits[i]);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += std::exp(logits[i] - mx);
  return logits[k] - mx - static_cast<float>(std::log(sum));
}

}  // namespace

ActResult SamplePolicy(const PolicyNet& net, const std::vector<float>& state,
                       Rng& rng, bool deterministic) {
  nn::NoGradGuard no_grad;
  const PolicyNetConfig& cfg = net.config();
  CEWS_CHECK_EQ(static_cast<int>(state.size()),
                cfg.in_channels * cfg.grid * cfg.grid);
  const nn::Tensor x =
      nn::Tensor::FromData({1, cfg.in_channels, cfg.grid, cfg.grid}, state);
  const PolicyOutput out = net.Forward(x);

  ActResult result;
  result.value = out.value.item();
  const float* move_logits = out.move_logits.data();
  const float* charge_logits = out.charge_logits.data();
  float log_prob = 0.0f;
  for (int w = 0; w < cfg.num_workers; ++w) {
    const float* ml = move_logits + w * cfg.num_moves;
    const int move = SampleFromLogits(ml, cfg.num_moves, rng, deterministic);
    log_prob += LogProbOf(ml, cfg.num_moves, move);
    const float* cl = charge_logits + w * 2;
    const int charge = SampleFromLogits(cl, 2, rng, deterministic);
    log_prob += LogProbOf(cl, 2, charge);
    result.moves.push_back(move);
    result.charges.push_back(charge);
    result.actions.push_back(env::WorkerAction{move, charge == 1});
  }
  result.log_prob = log_prob;
  return result;
}

EvalResult EvaluatePolicy(const PolicyNet& net, env::Env& env,
                          const env::StateEncoder& encoder, Rng& rng,
                          bool deterministic) {
  env.Reset();
  EvalResult result;
  int steps = 0;
  while (!env.Done()) {
    const std::vector<float> state = encoder.Encode(env);
    const ActResult act = SamplePolicy(net, state, rng, deterministic);
    const env::StepResult step = env.Step(act.actions);
    result.mean_sparse_reward += step.sparse_reward;
    result.mean_dense_reward += step.dense_reward;
    ++steps;
  }
  if (steps > 0) {
    result.mean_sparse_reward /= steps;
    result.mean_dense_reward /= steps;
  }
  result.kappa = env.Kappa();
  result.xi = env.Xi();
  result.rho = env.Rho();
  return result;
}

EvalResult EvaluatePolicyAveraged(const PolicyNet& net, env::Env& env,
                                  const env::StateEncoder& encoder, Rng& rng,
                                  int episodes, bool deterministic) {
  CEWS_CHECK_GT(episodes, 0);
  EvalResult total;
  total.xi = 0.0;
  for (int e = 0; e < episodes; ++e) {
    const EvalResult r = EvaluatePolicy(net, env, encoder, rng, deterministic);
    total.kappa += r.kappa;
    total.xi += r.xi;
    total.rho += r.rho;
    total.mean_sparse_reward += r.mean_sparse_reward;
    total.mean_dense_reward += r.mean_dense_reward;
  }
  total.kappa /= episodes;
  total.xi /= episodes;
  total.rho /= episodes;
  total.mean_sparse_reward /= episodes;
  total.mean_dense_reward /= episodes;
  return total;
}

}  // namespace cews::agents
