// The spatial curiosity model (Section V-C, Algorithm 3): predicts the
// feature embedding of a worker's next position from its current position
// feature and route-planning decision; the prediction error is the
// intrinsic reward r^int = eta * Loss^f (Eqns 15-17).
//
// Implements all four feature/structure combinations evaluated in Fig. 4:
//   {shared, independent} x {embedding, direct}.
// "Embedding" is a *static* randomly-initialized (frozen) embedding of grid
// cells (Burda et al.'s finding that random features are stable);
// "direct" scales the raw position into (0, 1)^2. "Shared" uses one forward
// model for every worker; "independent" trains one per worker.
#ifndef CEWS_AGENTS_CURIOSITY_H_
#define CEWS_AGENTS_CURIOSITY_H_

#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/graph.h"
#include "nn/module.h"

namespace cews::agents {

/// Position representation fed to the forward model.
enum class CuriosityFeature { kEmbedding, kDirect };
/// One forward model for all workers, or one per worker.
enum class CuriosityStructure { kShared, kIndependent };

/// Hyperparameters of the spatial curiosity model.
struct CuriosityConfig {
  CuriosityFeature feature = CuriosityFeature::kEmbedding;
  CuriosityStructure structure = CuriosityStructure::kShared;
  /// Intrinsic-reward scale eta (Eqn 17); paper uses 0.3.
  float eta = 0.3f;
  /// Dimension of the static spatial embedding (paper: 8).
  int embed_dim = 8;
  /// Hidden width of the forward model MLP.
  int hidden = 64;
  /// Learning rate when trained standalone (the chief uses its own Adam).
  float lr = 1e-3f;
  /// Number of grid cells (embedding vocabulary); set from the encoder.
  int num_cells = 400;
  /// Number of route-planning options (one-hot action input).
  int num_moves = 17;
  /// Number of workers W.
  int num_workers = 2;
};

/// A worker position in both representations: grid cell (embedding feature)
/// and coordinates scaled into (0, 1) (direct feature).
struct PositionObs {
  int cell = 0;
  float sx = 0.0f;
  float sy = 0.0f;
};

/// One training sample for the forward model.
struct CuriositySample {
  int worker = 0;
  PositionObs from;
  int move = 0;
  PositionObs to;
};

/// The spatial curiosity model.
class SpatialCuriosity {
 public:
  SpatialCuriosity(const CuriosityConfig& config, uint64_t seed);

  /// Intrinsic reward for one observed worker transition (Eqn 17); no tape.
  double IntrinsicReward(int worker, const PositionObs& from, int move,
                         const PositionObs& to) const;

  /// Mean intrinsic reward over all workers for one environment step
  /// (Algorithm 3 outputs rewards for workers "orderly"; we aggregate by
  /// mean so the scale is invariant to W).
  double MeanIntrinsicReward(const std::vector<PositionObs>& from,
                             const std::vector<int>& moves,
                             const std::vector<PositionObs>& to) const;

  /// Training loss Loss^f (Eqn 16) averaged over the batch; build + return
  /// the graph for backward.
  nn::Tensor Loss(const std::vector<CuriositySample>& batch) const;

  /// Draws min(batch, samples.size()) samples with replacement from
  /// `samples` and returns Loss over them — the trainer's per-epoch update
  /// path. CHECK-fails on an empty sample pool.
  nn::Tensor SampleLoss(const std::vector<CuriositySample>& samples,
                        size_t batch, Rng& rng) const;

  /// Trainable parameters (forward models only; the embedding is frozen).
  std::vector<nn::Tensor> Parameters() const;

  const CuriosityConfig& config() const { return config_; }

 private:
  /// Feature dimension of the chosen representation.
  int FeatureDim() const;
  /// Writes the feature of `p` into out[0..FeatureDim).
  void WriteFeature(const PositionObs& p, float* out) const;
  /// Forward model for a given worker (shared: always model 0).
  const nn::Mlp& ModelFor(int worker) const;

  /// One compiled forward-model loss graph (CEWS_NN_GRAPH=1, shared
  /// structure only), cached per batch size. The kIndependent structure
  /// partitions the batch by worker, so its sub-batch shapes vary per call
  /// and it stays on the tape.
  struct LossGraph {
    nn::graph::GraphPtr graph;
    nn::Tensor inputs, targets, loss;
  };

  CuriosityConfig config_;
  std::unique_ptr<nn::Embedding> embedding_;  // frozen, embedding feature
  std::vector<std::unique_ptr<nn::Mlp>> forward_models_;
  mutable std::map<nn::Index, LossGraph> loss_graphs_;
};

}  // namespace cews::agents

#endif  // CEWS_AGENTS_CURIOSITY_H_
