#include "core/training_log.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace cews::core {

std::string HistoryToCsv(const std::vector<agents::EpisodeRecord>& history) {
  std::ostringstream os;
  // The original columns stay a stable prefix; downstream plot scripts that
  // index by name or by the first six positions keep working.
  os << "episode,kappa,xi,rho,extrinsic_reward,intrinsic_reward,"
        "wall_seconds,steps_per_sec\n";
  for (const agents::EpisodeRecord& rec : history) {
    os << rec.episode << "," << rec.kappa << "," << rec.xi << "," << rec.rho
       << "," << rec.extrinsic_reward << "," << rec.intrinsic_reward << ","
       << rec.wall_seconds << "," << rec.steps_per_sec << "\n";
  }
  return os.str();
}

Status WriteHistoryCsv(const std::vector<agents::EpisodeRecord>& history,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << HistoryToCsv(history);
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

std::vector<double> MovingAverage(
    const std::vector<agents::EpisodeRecord>& history, int window,
    double (*pick)(const agents::EpisodeRecord&)) {
  CEWS_CHECK_GE(window, 1);
  std::vector<double> out;
  out.reserve(history.size());
  double acc = 0.0;
  for (size_t i = 0; i < history.size(); ++i) {
    acc += pick(history[i]);
    if (i >= static_cast<size_t>(window)) {
      acc -= pick(history[i - static_cast<size_t>(window)]);
    }
    const size_t n = std::min(i + 1, static_cast<size_t>(window));
    out.push_back(acc / static_cast<double>(n));
  }
  return out;
}

}  // namespace cews::core
