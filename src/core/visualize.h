// SVG rendering of scenarios, trajectories (Fig. 2c) and curiosity heat
// maps (Fig. 9) — publication-style artifacts straight from the library.
#ifndef CEWS_CORE_VISUALIZE_H_
#define CEWS_CORE_VISUALIZE_H_

#include <string>
#include <vector>

#include "agents/chief_employee.h"
#include "common/status.h"
#include "env/env.h"

namespace cews::core {

/// Renders the map (obstacles grey, PoIs gold dots scaled by value,
/// stations green squares) plus one colored polyline per worker trajectory.
std::string TrajectorySvg(
    const env::Map& map,
    const std::vector<std::vector<env::Position>>& trajectories);

/// Renders one heat-map snapshot as a grid of brightness-scaled cells with
/// the map's obstacles overlaid.
std::string HeatmapSvg(const env::Map& map,
                       const agents::HeatmapSnapshot& snapshot, int grid);

/// Writes TrajectorySvg to `path`.
Status WriteTrajectorySvg(
    const env::Map& map,
    const std::vector<std::vector<env::Position>>& trajectories,
    const std::string& path);

/// Writes HeatmapSvg to `path`.
Status WriteHeatmapSvg(const env::Map& map,
                       const agents::HeatmapSnapshot& snapshot, int grid,
                       const std::string& path);

/// Terminal rendering of a map: '#' obstacles, '*' PoIs, 'C' stations,
/// 'W' worker spawns, '.' free space. `columns` sets the raster width;
/// rows follow the map's aspect ratio. Top row = largest y.
std::string AsciiMap(const env::Map& map, int columns = 48);

}  // namespace cews::core

#endif  // CEWS_CORE_VISUALIZE_H_
