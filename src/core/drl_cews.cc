#include "core/drl_cews.h"

#include <fstream>
#include <string>

#include "common/check.h"
#include "common/log.h"
#include "env/vec_env.h"
#include "nn/serialize.h"

namespace cews::core {

namespace {

/// Shared validation behind Create() (Status) and the constructor (CHECK).
Status ValidateTrainerConfig(const agents::TrainerConfig& config,
                             const env::Map& map) {
  if (config.num_employees <= 0) {
    return Status::InvalidArgument(
        "num_employees must be positive, got " +
        std::to_string(config.num_employees));
  }
  if (config.episodes <= 0) {
    return Status::InvalidArgument(
        "episodes must be positive, got " +
        std::to_string(config.episodes));
  }
  if (config.batch_size <= 0) {
    return Status::InvalidArgument(
        "batch_size must be positive, got " +
        std::to_string(config.batch_size));
  }
  if (config.update_epochs <= 0) {
    return Status::InvalidArgument(
        "update_epochs must be positive, got " +
        std::to_string(config.update_epochs));
  }
  if (config.runtime_threads < 0) {
    return Status::InvalidArgument(
        "runtime_threads must be non-negative (0 = hardware cores), got " +
        std::to_string(config.runtime_threads));
  }
  if (config.envs_per_employee <= 0) {
    return Status::InvalidArgument(
        "envs_per_employee must be positive, got " +
        std::to_string(config.envs_per_employee));
  }
  if (config.encoder.grid <= 0) {
    return Status::InvalidArgument(
        "encoder.grid must be positive, got " +
        std::to_string(config.encoder.grid));
  }
  // The trainer auto-fills net.grid from the encoder, so a conflicting
  // explicit value is a config error rather than something to silently
  // overwrite.
  if (config.net.grid != config.encoder.grid) {
    return Status::InvalidArgument(
        "net.grid (" + std::to_string(config.net.grid) +
        ") does not match encoder.grid (" +
        std::to_string(config.encoder.grid) +
        "); leave net.grid at the encoder's value");
  }
  if (map.worker_spawns.empty()) {
    return Status::InvalidArgument("map has no worker spawns");
  }
  if (map.pois.empty()) {
    return Status::InvalidArgument("map has no PoIs");
  }
  CEWS_RETURN_IF_ERROR(config.env.Validate(map.worker_spawns.size()));
  return Status::OK();
}

/// Runs the Create()-style validation in the legacy constructor path,
/// aborting with the same diagnostic on failure.
env::Map ValidatedMapOrDie(const agents::TrainerConfig& config,
                           env::Map map) {
  const Status status = ValidateTrainerConfig(config, map);
  CEWS_CHECK(status.ok()) << "invalid DrlCews configuration: "
                          << status.ToString();
  return map;
}

}  // namespace

agents::TrainerConfig DrlCews::DefaultConfig() {
  agents::TrainerConfig config;
  config.num_employees = 8;
  config.batch_size = 250;
  config.update_epochs = 4;
  config.reward_mode = agents::RewardMode::kSparse;
  config.intrinsic = agents::IntrinsicMode::kSpatialCuriosity;
  config.curiosity.feature = agents::CuriosityFeature::kEmbedding;
  config.curiosity.structure = agents::CuriosityStructure::kShared;
  config.curiosity.eta = 0.3f;
  // env/encoder defaults already carry the Section VII-A constants
  // (b0 = 40, g = 0.8, lambda = 0.2, alpha = 1, beta = 0.1, eps1 = 5%,
  //  eps2 = 40%, charge range 0.8).
  return config;
}

Result<std::unique_ptr<DrlCews>> DrlCews::Create(
    const agents::TrainerConfig& config, env::Map map) {
  CEWS_RETURN_IF_ERROR(ValidateTrainerConfig(config, map));
  // The constructor revalidates (cheap) and cannot fail past this point.
  return std::unique_ptr<DrlCews>(new DrlCews(config, std::move(map)));
}

DrlCews::DrlCews(const agents::TrainerConfig& config, env::Map map)
    : map_(ValidatedMapOrDie(config, std::move(map))),
      encoder_(config.encoder),
      trainer_(std::make_unique<agents::ChiefEmployeeTrainer>(config, map_)),
      eval_rng_(config.seed * 0xC0FFEEULL + 1) {}

DrlCews::~DrlCews() = default;

agents::TrainResult DrlCews::Train() { return trainer_->Train(); }

agents::EvalResult DrlCews::Evaluate(int episodes, bool deterministic) {
  CEWS_CHECK_GT(episodes, 0);
  // One VecEnv instance per episode: the whole evaluation is a single pass
  // through the batched acting path instead of `episodes` sequential runs.
  env::VecEnv vec(trainer_->config().env, map_, episodes);
  const std::vector<agents::EvalResult> per_episode =
      agents::EvaluatePolicyVec(trainer_->global_net(), vec, encoder_,
                                eval_rng_, deterministic);
  agents::EvalResult total;
  total.xi = 0.0;
  for (const agents::EvalResult& r : per_episode) {
    total.kappa += r.kappa;
    total.xi += r.xi;
    total.rho += r.rho;
    total.mean_sparse_reward += r.mean_sparse_reward;
    total.mean_dense_reward += r.mean_dense_reward;
  }
  total.kappa /= episodes;
  total.xi /= episodes;
  total.rho /= episodes;
  total.mean_sparse_reward /= episodes;
  total.mean_dense_reward /= episodes;
  return total;
}

Status DrlCews::SaveCheckpoint(const std::string& path) const {
  nn::SaveInfo info;
  CEWS_RETURN_IF_ERROR(
      nn::SaveParameters(path, trainer_->global_net().Parameters(), &info));
  // Path + size + checksum, so operators can correlate a server-side hot
  // reload (serve::PolicyServer::PublishFromFile) with this trainer output.
  CEWS_LOG(Info) << "checkpoint -> " << path << " (" << info.bytes
                 << " bytes, crc32 " << std::hex << info.crc32 << ")";
  return Status::OK();
}

Status DrlCews::LoadCheckpoint(const std::string& path) {
  return nn::LoadParameters(path, trainer_->global_net().Parameters());
}

const std::vector<agents::HeatmapSnapshot>& DrlCews::heatmap_snapshots()
    const {
  return trainer_->heatmap_snapshots();
}

Status DrlCews::ExportHeatmapCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "episode,cell_y,cell_x,curiosity\n";
  const int g = encoder_.grid();
  for (const agents::HeatmapSnapshot& snap : heatmap_snapshots()) {
    for (int y = 0; y < g; ++y) {
      for (int x = 0; x < g; ++x) {
        const double v = snap.cell_values[static_cast<size_t>(y * g + x)];
        if (v != 0.0) {
          out << snap.episode << "," << y << "," << x << "," << v << "\n";
        }
      }
    }
  }
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Status DrlCews::ExportTrajectoryCsv(const std::string& path) {
  env::Env env(trainer_->config().env, map_);
  agents::EvaluatePolicy(trainer_->global_net(), env, encoder_, eval_rng_);
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "worker,t,x,y\n";
  const auto& trajectories = env.trajectories();
  for (size_t w = 0; w < trajectories.size(); ++w) {
    for (size_t t = 0; t < trajectories[w].size(); ++t) {
      out << w << "," << t << "," << trajectories[w][t].x << ","
          << trajectories[w][t].y << "\n";
    }
  }
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

agents::PolicyNet& DrlCews::net() { return trainer_->global_net(); }

const agents::TrainerConfig& DrlCews::config() const {
  return trainer_->config();
}

}  // namespace cews::core
