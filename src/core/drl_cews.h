// DRL-CEWS: the paper's headline system. A façade over the chief-employee
// trainer configured with the sparse extrinsic reward (Eqns 18-19) plus the
// shared-embedding spatial curiosity model (Eqns 15-17) — the combination
// Section VII selects — with checkpointing and result-export conveniences.
#ifndef CEWS_CORE_DRL_CEWS_H_
#define CEWS_CORE_DRL_CEWS_H_

#include <memory>
#include <string>

#include "agents/chief_employee.h"
#include "agents/eval.h"
#include "common/result.h"
#include "common/status.h"
#include "env/env.h"
#include "env/map.h"
#include "env/state_encoder.h"

namespace cews::core {

/// The DRL-CEWS system.
class DrlCews {
 public:
  /// The paper's configuration: sparse reward, shared-embedding spatial
  /// curiosity (eta = 0.3), 8 employees, batch 250, Section VII-A
  /// environment constants.
  static agents::TrainerConfig DefaultConfig();

  /// Builds the system for a given scenario after validating the
  /// configuration against the map: positive employee/episode/batch/epoch
  /// counts, a consistent grid between encoder and policy network, and
  /// per-worker EnvConfig overrides sized to the fleet. Returns
  /// InvalidArgument describing the first problem instead of aborting —
  /// the entry point for callers handling untrusted configs (CLI, tests).
  /// Any valid TrainerConfig is accepted (ablations flip reward/intrinsic
  /// modes); DefaultConfig() is DRL-CEWS proper.
  static Result<std::unique_ptr<DrlCews>> Create(
      const agents::TrainerConfig& config, env::Map map);

  /// Constructs directly, CHECK-aborting on the same problems Create()
  /// reports as a Status. Prefer Create() for new code.
  DrlCews(const agents::TrainerConfig& config, env::Map map);
  ~DrlCews();

  DrlCews(const DrlCews&) = delete;
  DrlCews& operator=(const DrlCews&) = delete;

  /// Trains with the synchronous chief-employee architecture (blocking).
  agents::TrainResult Train();

  /// Testing process (Section VI-D): runs the trained policy network alone.
  agents::EvalResult Evaluate(int episodes = 1, bool deterministic = false);

  /// Saves / restores the global policy network.
  Status SaveCheckpoint(const std::string& path) const;
  Status LoadCheckpoint(const std::string& path);

  /// Curiosity heat-map snapshots (Fig. 9); non-empty only when
  /// config.heatmap_snapshot_every > 0 and Train() has run.
  const std::vector<agents::HeatmapSnapshot>& heatmap_snapshots() const;

  /// Writes heat-map snapshots as CSV (episode, cell_y, cell_x, value).
  Status ExportHeatmapCsv(const std::string& path) const;

  /// Runs one evaluation episode and writes worker trajectories as CSV
  /// (worker, t, x, y) — the Fig. 2(c) artifact.
  Status ExportTrajectoryCsv(const std::string& path);

  agents::PolicyNet& net();
  const agents::TrainerConfig& config() const;
  const env::Map& map() const { return map_; }

 private:
  env::Map map_;
  env::StateEncoder encoder_;
  std::unique_ptr<agents::ChiefEmployeeTrainer> trainer_;
  Rng eval_rng_;
};

}  // namespace cews::core

#endif  // CEWS_CORE_DRL_CEWS_H_
