#include "core/visualize.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace cews::core {

namespace {

constexpr double kScale = 40.0;  // SVG pixels per space unit

const char* kWorkerColors[] = {"#d62728", "#1f77b4", "#2ca02c", "#9467bd",
                               "#ff7f0e", "#8c564b", "#e377c2", "#7f7f7f"};

/// The space's y axis points up; SVG's points down.
double FlipY(const env::Map& map, double y) {
  return (map.config.size_y - y) * kScale;
}

void OpenSvg(std::ostringstream& os, const env::Map& map) {
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
     << map.config.size_x * kScale << "\" height=\""
     << map.config.size_y * kScale << "\" viewBox=\"0 0 "
     << map.config.size_x * kScale << " " << map.config.size_y * kScale
     << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"#fafafa\"/>\n";
}

void DrawObstacles(std::ostringstream& os, const env::Map& map) {
  for (const env::Rect& r : map.obstacles) {
    os << "<rect x=\"" << r.x0 * kScale << "\" y=\"" << FlipY(map, r.y1)
       << "\" width=\"" << r.width() * kScale << "\" height=\""
       << r.height() * kScale << "\" fill=\"#9e9e9e\"/>\n";
  }
}

void DrawEntities(std::ostringstream& os, const env::Map& map) {
  for (const env::Poi& p : map.pois) {
    os << "<circle cx=\"" << p.pos.x * kScale << "\" cy=\""
       << FlipY(map, p.pos.y) << "\" r=\"" << 1.5 + 2.5 * p.initial_value
       << "\" fill=\"#f0b429\" fill-opacity=\"0.8\"/>\n";
  }
  for (const env::ChargingStation& s : map.stations) {
    const double half = 0.25 * kScale;
    os << "<rect x=\"" << s.pos.x * kScale - half << "\" y=\""
       << FlipY(map, s.pos.y) - half << "\" width=\"" << 2 * half
       << "\" height=\"" << 2 * half
       << "\" fill=\"#2e7d32\" stroke=\"#1b5e20\"/>\n";
  }
}

}  // namespace

std::string TrajectorySvg(
    const env::Map& map,
    const std::vector<std::vector<env::Position>>& trajectories) {
  std::ostringstream os;
  OpenSvg(os, map);
  DrawObstacles(os, map);
  DrawEntities(os, map);
  const size_t palette =
      sizeof(kWorkerColors) / sizeof(kWorkerColors[0]);
  for (size_t w = 0; w < trajectories.size(); ++w) {
    if (trajectories[w].empty()) continue;
    os << "<polyline fill=\"none\" stroke=\"" << kWorkerColors[w % palette]
       << "\" stroke-width=\"2.5\" stroke-opacity=\"0.85\" points=\"";
    for (const env::Position& p : trajectories[w]) {
      os << p.x * kScale << "," << FlipY(map, p.y) << " ";
    }
    os << "\"/>\n";
    // Start marker.
    const env::Position& start = trajectories[w].front();
    os << "<circle cx=\"" << start.x * kScale << "\" cy=\""
       << FlipY(map, start.y) << "\" r=\"6\" fill=\""
       << kWorkerColors[w % palette] << "\"/>\n";
  }
  os << "</svg>\n";
  return os.str();
}

std::string HeatmapSvg(const env::Map& map,
                       const agents::HeatmapSnapshot& snapshot, int grid) {
  std::ostringstream os;
  OpenSvg(os, map);
  double max_value = 0.0;
  for (double v : snapshot.cell_values) max_value = std::max(max_value, v);
  const double cell_w = map.config.size_x / grid * kScale;
  const double cell_h = map.config.size_y / grid * kScale;
  os << "<rect width=\"100%\" height=\"100%\" fill=\"#101020\"/>\n";
  for (int y = 0; y < grid; ++y) {
    for (int x = 0; x < grid; ++x) {
      const double v = snapshot.cell_values[static_cast<size_t>(y * grid + x)];
      if (v <= 0.0 || max_value <= 0.0) continue;
      const double heat = v / max_value;
      const int red = static_cast<int>(255 * std::sqrt(heat));
      const int green = static_cast<int>(180 * heat);
      os << "<rect x=\"" << x * cell_w << "\" y=\""
         << (grid - 1 - y) * cell_h << "\" width=\"" << cell_w
         << "\" height=\"" << cell_h << "\" fill=\"rgb(" << red << ","
         << green << ",40)\"/>\n";
    }
  }
  DrawObstacles(os, map);
  os << "<text x=\"8\" y=\"20\" fill=\"#ffffff\" font-size=\"16\">episode "
     << snapshot.episode << "</text>\n";
  os << "</svg>\n";
  return os.str();
}

namespace {
Status WriteFile(const std::string& content, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << content;
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}
}  // namespace

Status WriteTrajectorySvg(
    const env::Map& map,
    const std::vector<std::vector<env::Position>>& trajectories,
    const std::string& path) {
  return WriteFile(TrajectorySvg(map, trajectories), path);
}

Status WriteHeatmapSvg(const env::Map& map,
                       const agents::HeatmapSnapshot& snapshot, int grid,
                       const std::string& path) {
  return WriteFile(HeatmapSvg(map, snapshot, grid), path);
}

std::string AsciiMap(const env::Map& map, int columns) {
  if (columns < 4) columns = 4;
  const int rows = std::max(
      2, static_cast<int>(columns * map.config.size_y / map.config.size_x /
                          2.0));  // terminal glyphs are ~2x taller than wide
  std::vector<std::string> canvas(static_cast<size_t>(rows),
                                  std::string(static_cast<size_t>(columns),
                                              '.'));
  const double cw = map.config.size_x / columns;
  const double ch = map.config.size_y / rows;
  auto put = [&](const env::Position& p, char glyph) {
    int x = static_cast<int>(p.x / cw);
    int y = static_cast<int>(p.y / ch);
    x = std::max(0, std::min(columns - 1, x));
    y = std::max(0, std::min(rows - 1, y));
    canvas[static_cast<size_t>(rows - 1 - y)][static_cast<size_t>(x)] = glyph;
  };
  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < columns; ++x) {
      const env::Position center{(x + 0.5) * cw, (y + 0.5) * ch};
      if (map.InObstacle(center)) {
        canvas[static_cast<size_t>(rows - 1 - y)][static_cast<size_t>(x)] =
            '#';
      }
    }
  }
  for (const env::Poi& p : map.pois) put(p.pos, '*');
  for (const env::ChargingStation& s : map.stations) put(s.pos, 'C');
  for (const env::Position& p : map.worker_spawns) put(p, 'W');
  std::string out;
  for (const std::string& row : canvas) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace cews::core
