// Named canonical scenarios: reproducible map configurations used across
// examples, tests and benches, so "the standard map" means the same thing
// everywhere.
#ifndef CEWS_CORE_SCENARIOS_H_
#define CEWS_CORE_SCENARIOS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "env/map.h"

namespace cews::core {

/// The built-in scenario families.
enum class Scenario {
  /// Obstacle-free 16x16 space, mildly clustered PoIs.
  kOpenField,
  /// The paper's Section VII-A setup: collapsed buildings + the
  /// hard-exploration corner room (Fig. 2b).
  kEarthquakeSite,
  /// Heavily obstructed variant (12 buildings), tight navigation.
  kDenseRubble,
  /// Strongly uneven data: nearly everything in a few tight clusters plus
  /// the corner room — the regime where the paper's sparse-reward argument
  /// bites hardest.
  kSkewedClusters,
};

/// All scenario ids, in declaration order.
std::vector<Scenario> AllScenarios();

/// Stable lowercase name ("open-field", "earthquake-site", ...).
std::string ScenarioName(Scenario scenario);

/// Parses a name produced by ScenarioName.
Result<Scenario> ScenarioFromName(const std::string& name);

/// The MapConfig of a scenario at the given entity counts.
env::MapConfig ScenarioConfig(Scenario scenario, int pois, int workers,
                              int stations);

/// Generates a deterministic instance of the scenario.
Result<env::Map> MakeScenario(Scenario scenario, int pois, int workers,
                              int stations, uint64_t seed);

}  // namespace cews::core

#endif  // CEWS_CORE_SCENARIOS_H_
