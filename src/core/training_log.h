// Training-history export: per-episode metrics as CSV, for plotting the
// paper's training-curve figures (Figs. 4-5) from any run.
#ifndef CEWS_CORE_TRAINING_LOG_H_
#define CEWS_CORE_TRAINING_LOG_H_

#include <string>
#include <vector>

#include "agents/chief_employee.h"
#include "common/status.h"

namespace cews::core {

/// Renders a training history as CSV with columns
/// episode,kappa,xi,rho,extrinsic_reward,intrinsic_reward,
/// wall_seconds,steps_per_sec (the first six columns are a stable prefix).
std::string HistoryToCsv(const std::vector<agents::EpisodeRecord>& history);

/// Writes HistoryToCsv to `path`.
Status WriteHistoryCsv(const std::vector<agents::EpisodeRecord>& history,
                       const std::string& path);

/// Trailing-window moving average over one metric of the history.
/// `pick` selects the metric; window must be >= 1.
std::vector<double> MovingAverage(
    const std::vector<agents::EpisodeRecord>& history, int window,
    double (*pick)(const agents::EpisodeRecord&));

}  // namespace cews::core

#endif  // CEWS_CORE_TRAINING_LOG_H_
