// Uniform runner over the five compared algorithms (Section VII-B), used by
// every figure/table benchmark: train (when learning-based) and evaluate on
// the same map instance.
#ifndef CEWS_CORE_ALGORITHMS_H_
#define CEWS_CORE_ALGORITHMS_H_

#include <string>
#include <vector>

#include "agents/chief_employee.h"
#include "agents/eval.h"
#include "env/env.h"
#include "env/map.h"

namespace cews::core {

/// The five compared approaches.
enum class Algorithm { kDrlCews, kDppo, kEdics, kDnc, kGreedy };

/// Display name as used in the paper's figures.
std::string AlgorithmName(Algorithm algorithm);

/// All five, in the paper's legend order.
std::vector<Algorithm> AllAlgorithms();

/// Knobs shared by the benchmark harnesses. Defaults are the quick-mode
/// scaled-down settings; paper-scale runs raise episodes/employees/batch.
struct BenchmarkOptions {
  /// Training episodes for DRL algorithms.
  int episodes = 120;
  /// Employee threads for the distributed trainers.
  int num_employees = 4;
  /// Update minibatch size.
  int batch_size = 125;
  /// Intra-op NN kernel threads (TrainerConfig::runtime_threads); 1 keeps
  /// kernels serial, 0 = hardware cores, CEWS_NUM_THREADS overrides.
  int runtime_threads = 1;
  /// Env instances per employee on the vectorized acting path
  /// (TrainerConfig::envs_per_employee); 1 ≡ the legacy single-env loop.
  int envs_per_employee = 1;
  /// PPO epochs K per episode.
  int update_epochs = 6;
  /// Evaluation episodes averaged for the reported metrics.
  int eval_episodes = 3;
  uint64_t seed = 1;
  /// State-grid resolution (also sets the CNN input size).
  int grid = 16;
  /// Scaled-down network for quick mode.
  agents::PolicyNetConfig net = MakeBenchNet();

  // Learning hyperparameters tuned for short quick-mode runs (paper-scale
  // runs override some of these; see bench/bench_util.h). The reward scale
  // keeps discounted returns O(1) so the value head can track them within a
  // few hundred episodes on short horizons.
  float lr = 3e-3f;
  float gamma = 0.95f;
  float reward_scale = 0.1f;
  float curiosity_lr = 3e-4f;
  float curiosity_eta = 0.5f;
  /// The paper's sparse-reward milestone (Section VII-A).
  double epsilon1 = 0.05;

  static agents::PolicyNetConfig MakeBenchNet() {
    agents::PolicyNetConfig net;
    net.conv1_channels = 6;
    net.conv2_channels = 8;
    net.conv3_channels = 8;
    net.feature_dim = 128;
    return net;
  }
};

/// Builds the TrainerConfig for one of the distributed DRL algorithms
/// (kDrlCews or kDppo) under the given bench options.
agents::TrainerConfig MakeTrainerConfig(Algorithm algorithm,
                                        const env::EnvConfig& env_config,
                                        const BenchmarkOptions& options);

/// Trains (if applicable) and evaluates `algorithm` on the scenario.
agents::EvalResult RunAlgorithm(Algorithm algorithm, const env::Map& map,
                                const env::EnvConfig& env_config,
                                const BenchmarkOptions& options);

}  // namespace cews::core

#endif  // CEWS_CORE_ALGORITHMS_H_
