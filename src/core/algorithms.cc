#include "core/algorithms.h"

#include "baselines/dnc.h"
#include "baselines/dppo.h"
#include "baselines/edics.h"
#include "baselines/greedy.h"
#include "baselines/planner.h"
#include "common/check.h"
#include "core/drl_cews.h"

namespace cews::core {

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kDrlCews:
      return "DRL-CEWS";
    case Algorithm::kDppo:
      return "DPPO";
    case Algorithm::kEdics:
      return "Edics";
    case Algorithm::kDnc:
      return "D&C";
    case Algorithm::kGreedy:
      return "Greedy";
  }
  return "?";
}

std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kDrlCews, Algorithm::kDppo, Algorithm::kEdics,
          Algorithm::kDnc, Algorithm::kGreedy};
}

agents::TrainerConfig MakeTrainerConfig(Algorithm algorithm,
                                        const env::EnvConfig& env_config,
                                        const BenchmarkOptions& options) {
  CEWS_CHECK(algorithm == Algorithm::kDrlCews ||
             algorithm == Algorithm::kDppo);
  agents::TrainerConfig config = DrlCews::DefaultConfig();
  if (algorithm == Algorithm::kDppo) {
    config = baselines::MakeDppoConfig(config);
  }
  config.env = env_config;
  config.env.epsilon1 = options.epsilon1;
  config.encoder.grid = options.grid;
  config.net = options.net;
  config.net.grid = options.grid;
  config.episodes = options.episodes;
  config.num_employees = options.num_employees;
  config.batch_size = options.batch_size;
  config.runtime_threads = options.runtime_threads;
  config.envs_per_employee = options.envs_per_employee;
  config.update_epochs = options.update_epochs;
  config.ppo.lr = options.lr;
  config.ppo.gamma = options.gamma;
  config.reward_scale = options.reward_scale;
  config.curiosity.lr = options.curiosity_lr;
  config.curiosity.eta = options.curiosity_eta;
  config.seed = options.seed;
  return config;
}

agents::EvalResult RunAlgorithm(Algorithm algorithm, const env::Map& map,
                                const env::EnvConfig& env_config,
                                const BenchmarkOptions& options) {
  switch (algorithm) {
    case Algorithm::kGreedy: {
      env::Env env(env_config, map);
      return baselines::RunPlannerEpisode(baselines::GreedyPlanner(), env);
    }
    case Algorithm::kDnc: {
      env::Env env(env_config, map);
      return baselines::RunPlannerEpisode(baselines::DncPlanner(), env);
    }
    case Algorithm::kEdics: {
      baselines::EdicsConfig config;
      config.env = env_config;
      config.encoder.grid = options.grid;
      config.net = options.net;
      config.episodes = options.episodes;
      config.update_epochs = options.update_epochs;
      config.ppo.lr = options.lr;
      config.ppo.gamma = options.gamma;
      config.reward_scale = options.reward_scale;
      config.seed = options.seed;
      baselines::EdicsTrainer trainer(config, map);
      trainer.Train();
      Rng rng(options.seed * 0xE7A1ULL + 3);
      agents::EvalResult total;
      total.xi = 0.0;
      for (int e = 0; e < options.eval_episodes; ++e) {
        const agents::EvalResult r = trainer.Evaluate(rng);
        total.kappa += r.kappa;
        total.xi += r.xi;
        total.rho += r.rho;
        total.mean_sparse_reward += r.mean_sparse_reward;
        total.mean_dense_reward += r.mean_dense_reward;
      }
      total.kappa /= options.eval_episodes;
      total.xi /= options.eval_episodes;
      total.rho /= options.eval_episodes;
      total.mean_sparse_reward /= options.eval_episodes;
      total.mean_dense_reward /= options.eval_episodes;
      return total;
    }
    case Algorithm::kDrlCews:
    case Algorithm::kDppo: {
      auto system = DrlCews::Create(
          MakeTrainerConfig(algorithm, env_config, options), map);
      CEWS_CHECK(system.ok()) << system.status().ToString();
      (*system)->Train();
      return (*system)->Evaluate(options.eval_episodes);
    }
  }
  CEWS_CHECK(false) << "unknown algorithm";
  return {};
}

}  // namespace cews::core
