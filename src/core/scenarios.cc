#include "core/scenarios.h"

namespace cews::core {

std::vector<Scenario> AllScenarios() {
  return {Scenario::kOpenField, Scenario::kEarthquakeSite,
          Scenario::kDenseRubble, Scenario::kSkewedClusters};
}

std::string ScenarioName(Scenario scenario) {
  switch (scenario) {
    case Scenario::kOpenField:
      return "open-field";
    case Scenario::kEarthquakeSite:
      return "earthquake-site";
    case Scenario::kDenseRubble:
      return "dense-rubble";
    case Scenario::kSkewedClusters:
      return "skewed-clusters";
  }
  return "?";
}

Result<Scenario> ScenarioFromName(const std::string& name) {
  for (const Scenario scenario : AllScenarios()) {
    if (ScenarioName(scenario) == name) return scenario;
  }
  return Status::NotFound("unknown scenario '" + name +
                          "' (try open-field, earthquake-site, "
                          "dense-rubble, skewed-clusters)");
}

env::MapConfig ScenarioConfig(Scenario scenario, int pois, int workers,
                              int stations) {
  env::MapConfig config;
  config.num_pois = pois;
  config.num_workers = workers;
  config.num_stations = stations;
  switch (scenario) {
    case Scenario::kOpenField:
      config.num_obstacles = 0;
      config.hard_corner = false;
      config.uniform_fraction = 0.4;
      config.corner_fraction = 0.0;
      config.cluster_sigma = 2.0;
      break;
    case Scenario::kEarthquakeSite:
      // The paper's defaults.
      break;
    case Scenario::kDenseRubble:
      config.num_obstacles = 12;
      config.obstacle_min_size = 0.6;
      config.obstacle_max_size = 2.0;
      break;
    case Scenario::kSkewedClusters:
      config.num_clusters = 3;
      config.cluster_sigma = 0.7;
      config.uniform_fraction = 0.05;
      config.corner_fraction = 0.25;
      break;
  }
  return config;
}

Result<env::Map> MakeScenario(Scenario scenario, int pois, int workers,
                              int stations, uint64_t seed) {
  Rng rng(seed);
  return env::GenerateMap(ScenarioConfig(scenario, pois, workers, stations),
                          rng);
}

}  // namespace cews::core
