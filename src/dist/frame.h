// cews::dist — length-prefixed, CRC-framed message protocol of the
// distributed trainer (DESIGN.md §7).
//
// One frame on the wire:
//
//   u32 magic | u32 type | u32 payload_len | payload bytes | u32 crc32
//
// all little-endian, with the CRC-32 (common/crc32.h, the checkpoint
// footer's polynomial) computed over every byte before it (magic, type,
// length, payload). A receiver therefore rejects truncation, bit flips and
// stream desynchronization before a single payload byte is interpreted;
// since frames carry training state (parameter broadcasts, packed rollout
// buffers) a corrupt frame is an unrecoverable *connection* error, not a
// retryable message error — the stream offset itself can no longer be
// trusted.
//
// FrameReader is incremental: sockets deliver arbitrary chunks, so bytes
// are fed as they arrive and complete frames pop out once fully validated.
#ifndef CEWS_DIST_FRAME_H_
#define CEWS_DIST_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "common/status.h"

namespace cews::dist {

/// Message kinds of the chief<->employee protocol (trainer.h).
enum class FrameType : uint32_t {
  kHello = 1,      ///< employee -> chief: rank + config hash handshake
  kWelcome = 2,    ///< chief -> employee: handshake accepted (echoes hash)
  kParams = 3,     ///< chief -> employee: parameter broadcast
  kRollout = 4,    ///< employee -> chief: packed rollout payload
  kHeartbeat = 5,  ///< either way: liveness marker, no payload
  kShutdown = 6,   ///< chief -> employee: training finished, exit cleanly
};

const char* FrameTypeName(FrameType type);

/// One decoded, CRC-verified message.
struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

inline constexpr uint32_t kFrameMagic = 0x46574543u;  // "CEWF" on the wire
inline constexpr size_t kFrameHeaderSize = 12;        // magic + type + len
inline constexpr size_t kFrameTrailerSize = 4;        // crc32
/// Payload cap: a length field larger than this is treated as corruption
/// (the biggest legitimate payload — a packed rollout batch at bench
/// scale — is a few MB).
inline constexpr uint32_t kMaxFramePayload = 256u << 20;

/// Serializes one frame (header + payload + CRC trailer), ready to write to
/// a socket in one piece.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Incremental frame decoder. Feed() accepts any byte partitioning of the
/// stream; frames become available through HasFrame()/PopFrame() only once
/// their CRC has verified. Any validation failure (bad magic, implausible
/// length, unknown type, CRC mismatch) poisons the reader permanently —
/// the caller must drop the connection.
class FrameReader {
 public:
  /// Appends `n` bytes of stream and parses every complete frame out of the
  /// internal buffer. Returns the first validation error; once an error is
  /// returned every later Feed() fails with the same error.
  Status Feed(const void* data, size_t n);

  bool HasFrame() const { return !ready_.empty(); }

  /// The oldest fully validated frame; HasFrame() must be true.
  Frame PopFrame();

 private:
  Status Parse();

  std::string buf_;
  std::deque<Frame> ready_;
  Status error_ = Status::OK();
};

}  // namespace cews::dist

#endif  // CEWS_DIST_FRAME_H_
