#include "dist/frame.h"

#include <cstring>

#include "common/check.h"
#include "common/crc32.h"

namespace cews::dist {

namespace {

bool KnownType(uint32_t t) {
  return t >= static_cast<uint32_t>(FrameType::kHello) &&
         t <= static_cast<uint32_t>(FrameType::kShutdown);
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kWelcome: return "welcome";
    case FrameType::kParams: return "params";
    case FrameType::kRollout: return "rollout";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kShutdown: return "shutdown";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  CEWS_CHECK_LE(payload.size(), static_cast<size_t>(kMaxFramePayload))
      << "frame payload exceeds the wire cap";
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size() + kFrameTrailerSize);
  AppendU32(out, kFrameMagic);
  AppendU32(out, static_cast<uint32_t>(type));
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  AppendU32(out, ComputeCrc32(out.data(), out.size()));
  return out;
}

Status FrameReader::Feed(const void* data, size_t n) {
  if (!error_.ok()) return error_;
  buf_.append(static_cast<const char*>(data), n);
  error_ = Parse();
  return error_;
}

Frame FrameReader::PopFrame() {
  CEWS_CHECK(!ready_.empty()) << "PopFrame with no frame ready";
  Frame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

Status FrameReader::Parse() {
  size_t pos = 0;
  while (buf_.size() - pos >= kFrameHeaderSize) {
    const char* p = buf_.data() + pos;
    // Validate eagerly, field by field, so a desynchronized or hostile
    // stream fails as soon as the header is visible — not after buffering
    // payload_len bytes of garbage.
    if (ReadU32(p) != kFrameMagic) {
      return Status::IOError("frame stream corrupt: bad magic");
    }
    const uint32_t type = ReadU32(p + 4);
    if (!KnownType(type)) {
      return Status::IOError("frame stream corrupt: unknown frame type " +
                             std::to_string(type));
    }
    const uint32_t len = ReadU32(p + 8);
    if (len > kMaxFramePayload) {
      return Status::IOError("frame stream corrupt: implausible payload "
                             "length " + std::to_string(len));
    }
    const size_t total = kFrameHeaderSize + len + kFrameTrailerSize;
    if (buf_.size() - pos < total) break;  // incomplete; wait for bytes
    const uint32_t stored = ReadU32(p + kFrameHeaderSize + len);
    const uint32_t actual = ComputeCrc32(p, kFrameHeaderSize + len);
    if (stored != actual) {
      return Status::IOError("frame stream corrupt: CRC32 mismatch on " +
                             std::string(FrameTypeName(
                                 static_cast<FrameType>(type))) + " frame");
    }
    Frame f;
    f.type = static_cast<FrameType>(type);
    f.payload.assign(p + kFrameHeaderSize, len);
    ready_.push_back(std::move(f));
    pos += total;
  }
  if (pos > 0) buf_.erase(0, pos);
  return Status::OK();
}

}  // namespace cews::dist
