#include "dist/trainer.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <utility>

#include "agents/trainer_core.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "dist/deploy_loop.h"
#include "nn/params.h"
#include "nn/serialize.h"
#include "obs/metrics.h"

namespace cews::dist {

namespace {

env::Position WorkerPos(const env::Env& e, int w) {
  return e.workers()[static_cast<size_t>(w)].pos;
}

agents::PositionObs MakeObs(const env::StateEncoder& encoder,
                            const env::Map& map, const env::Position& p) {
  agents::PositionObs obs;
  obs.cell = encoder.CellIndex(map, p);
  obs.sx = static_cast<float>(p.x / map.config.size_x);
  obs.sy = static_cast<float>(p.y / map.config.size_y);
  return obs;
}

/// The employee-side intrinsic bridge: the in-process trainer's
/// IntrinsicObserver minus the heat-map accumulation (the chief owns no
/// shared stats here — heat maps are an in-process visualization feature).
/// Reward computation and curiosity-sample collection are identical, so
/// employee rollouts consume models and produce samples exactly like an
/// in-process employee thread.
class DistIntrinsicObserver : public agents::StepObserver {
 public:
  DistIntrinsicObserver(const env::StateEncoder& encoder, const env::Map& map,
                        agents::SpatialCuriosity* curiosity,
                        agents::RndCuriosity* rnd,
                        std::vector<agents::CuriositySample>* samples,
                        int num_envs, int num_workers)
      : encoder_(encoder),
        map_(map),
        curiosity_(curiosity),
        rnd_(rnd),
        samples_(samples),
        from_(static_cast<size_t>(num_envs),
              std::vector<agents::PositionObs>(
                  static_cast<size_t>(num_workers))) {}

  void BeforeStep(int env_index, const env::Env& env,
                  const agents::ActResult& /*act*/) override {
    if (curiosity_ == nullptr) return;
    std::vector<agents::PositionObs>& from =
        from_[static_cast<size_t>(env_index)];
    for (size_t w = 0; w < from.size(); ++w) {
      from[w] = MakeObs(encoder_, map_, WorkerPos(env, static_cast<int>(w)));
    }
  }

  double IntrinsicReward(int env_index, const env::Env& env,
                         const agents::ActResult& act,
                         const float* next_state) override {
    if (curiosity_ != nullptr) {
      std::vector<agents::PositionObs>& from =
          from_[static_cast<size_t>(env_index)];
      const int num_workers = static_cast<int>(from.size());
      double r_int = 0.0;
      for (int w = 0; w < num_workers; ++w) {
        const agents::PositionObs to =
            MakeObs(encoder_, map_, WorkerPos(env, w));
        r_int += curiosity_->IntrinsicReward(
            w, from[static_cast<size_t>(w)], act.moves[static_cast<size_t>(w)],
            to);
        samples_->push_back(agents::CuriositySample{
            w, from[static_cast<size_t>(w)], act.moves[static_cast<size_t>(w)],
            to});
      }
      return r_int / num_workers;
    }
    if (rnd_ != nullptr) return rnd_->IntrinsicReward(next_state);
    return 0.0;
  }

 private:
  const env::StateEncoder& encoder_;
  const env::Map& map_;
  agents::SpatialCuriosity* curiosity_;
  agents::RndCuriosity* rnd_;
  std::vector<agents::CuriositySample>* samples_;
  std::vector<std::vector<agents::PositionObs>> from_;
};

uint64_t CuriositySeed(uint64_t seed) { return seed * 0x9E3779B9ULL + 17; }
uint64_t RndSeed(uint64_t seed) { return seed * 0x9E3779B9ULL + 29; }
/// The chief's learner rng, disjoint from every other derivation in the
/// repo (17/29 intrinsic, 7919-per-rank rollout, +1000 agent init).
uint64_t LearnerSeed(uint64_t seed) { return seed * 0x9E3779B9ULL + 101; }

agents::EpisodeRecord MakeRecord(const agents::TrainerConfig& config, int it,
                                 const RolloutStats& totals, double wall) {
  agents::EpisodeRecord rec;
  rec.episode = it;
  const double inv_e = 1.0 / config.num_employees;
  rec.kappa = totals.kappa * inv_e;
  rec.xi = totals.xi * inv_e;
  rec.rho = totals.rho * inv_e;
  // Same scale as the in-process trainer: mean per step per instance.
  const double denom = static_cast<double>(config.env.horizon) *
                       config.envs_per_employee * config.num_employees;
  rec.extrinsic_reward = totals.extrinsic_sum / denom;
  rec.intrinsic_reward = totals.intrinsic_sum / denom;
  rec.wall_seconds = wall;
  if (wall > 0.0) {
    rec.steps_per_sec = static_cast<double>(totals.env_steps) / wall;
  }
  return rec;
}

}  // namespace

agents::TrainerConfig NormalizeConfig(const agents::TrainerConfig& config,
                                      const env::Map& map) {
  agents::TrainerConfig out = config;
  const env::StateEncoder encoder(config.encoder);
  out.net.num_workers = static_cast<int>(map.worker_spawns.size());
  out.net.num_moves = out.env.action_space.num_moves();
  out.net.grid = out.encoder.grid;
  out.curiosity.num_cells = encoder.NumCells();
  out.curiosity.num_moves = out.net.num_moves;
  out.curiosity.num_workers = out.net.num_workers;
  out.rnd.state_size = encoder.StateSize();
  return out;
}

// ---------------------------------------------------------------------------
// EmployeeCore
// ---------------------------------------------------------------------------

EmployeeCore::EmployeeCore(const agents::TrainerConfig& config,
                           const env::Map& map, int rank)
    : config_(config),
      map_(map),
      encoder_(config.encoder),
      agent_(config.net, config.ppo,
             config.seed + static_cast<uint64_t>(rank) + 1000),
      vec_(config.env, map_, config.envs_per_employee),
      rng_(config.seed * 7919 + static_cast<uint64_t>(rank)),
      normalizers_(static_cast<size_t>(config.envs_per_employee),
                   agents::RewardNormalizer(config.ppo.gamma)),
      rank_(rank) {
  CEWS_CHECK_GE(rank, 0);
  CEWS_CHECK_LT(rank, config.num_employees);
  if (config_.intrinsic == agents::IntrinsicMode::kSpatialCuriosity) {
    curiosity_ = std::make_unique<agents::SpatialCuriosity>(
        config_.curiosity, CuriositySeed(config_.seed));
  } else if (config_.intrinsic == agents::IntrinsicMode::kRnd) {
    rnd_ = std::make_unique<agents::RndCuriosity>(config_.rnd,
                                                  RndSeed(config_.seed));
  }
}

void EmployeeCore::SetParams(const ParamUpdate& update) {
  nn::LoadFlatValues(agent_.Parameters(), update.policy);
  if (curiosity_ != nullptr) {
    nn::LoadFlatValues(curiosity_->Parameters(), update.intrinsic);
  } else if (rnd_ != nullptr) {
    nn::LoadFlatValues(rnd_->Parameters(), update.intrinsic);
  }
}

RolloutPayload EmployeeCore::RunIteration(uint64_t iteration) {
  RolloutPayload payload;
  payload.rank = static_cast<uint32_t>(rank_);
  payload.iteration = iteration;

  DistIntrinsicObserver observer(encoder_, map_, curiosity_.get(), rnd_.get(),
                                 &payload.samples, vec_.size(),
                                 vec_.num_workers());
  agents::VecRolloutOptions options;
  options.sparse_reward = config_.reward_mode == agents::RewardMode::kSparse;
  options.add_intrinsic_to_reward = config_.add_intrinsic_to_reward;
  options.reward_scale = config_.reward_scale;

  agents::VecRolloutResult rollout = agents::RunVecRollout(
      agent_.net(), vec_, encoder_, rng_, options, &observer,
      config_.normalize_rewards ? &normalizers_ : nullptr);
  // GAE per instance buffer, employee-side: advantages must not bridge
  // episodes, and shipping them finished keeps the chief's merge pure
  // concatenation.
  for (agents::RolloutBuffer& b : rollout.buffers) {
    b.ComputeAdvantages(config_.ppo.gamma, config_.ppo.gae_lambda,
                        /*last_value=*/0.0f);
  }
  payload.buffers = std::move(rollout.buffers);
  for (size_t i = 0; i < rollout.extrinsic_sums.size(); ++i) {
    payload.stats.extrinsic_sum += rollout.extrinsic_sums[i];
    payload.stats.intrinsic_sum += rollout.intrinsic_sums[i];
  }
  payload.stats.kappa = vec_.MeanKappa();
  payload.stats.xi = vec_.MeanXi();
  payload.stats.rho = vec_.MeanRho();
  payload.stats.env_steps = rollout.env_steps;
  return payload;
}

// ---------------------------------------------------------------------------
// LearnerCore
// ---------------------------------------------------------------------------

LearnerCore::LearnerCore(const agents::TrainerConfig& config)
    : config_(config),
      agent_(config.net, config.ppo, config.seed),
      rng_(LearnerSeed(config.seed)) {
  if (config_.intrinsic == agents::IntrinsicMode::kSpatialCuriosity) {
    curiosity_ = std::make_unique<agents::SpatialCuriosity>(
        config_.curiosity, CuriositySeed(config_.seed));
    intrinsic_optimizer_ = std::make_unique<nn::Adam>(
        curiosity_->Parameters(), config_.curiosity.lr);
  } else if (config_.intrinsic == agents::IntrinsicMode::kRnd) {
    rnd_ = std::make_unique<agents::RndCuriosity>(config_.rnd,
                                                  RndSeed(config_.seed));
    intrinsic_optimizer_ =
        std::make_unique<nn::Adam>(rnd_->Parameters(), config_.rnd.lr);
  }
}

ParamUpdate LearnerCore::CurrentParams(uint64_t iteration) const {
  ParamUpdate update;
  update.iteration = iteration;
  update.policy = nn::FlattenValues(agent_.Parameters());
  if (curiosity_ != nullptr) {
    update.intrinsic = nn::FlattenValues(curiosity_->Parameters());
  } else if (rnd_ != nullptr) {
    update.intrinsic = nn::FlattenValues(rnd_->Parameters());
  }
  return update;
}

Status LearnerCore::LoadPolicy(const std::string& path) {
  nn::LoadOptions options;
  options.require_crc = true;
  return nn::LoadParameters(path, agent_.Parameters(), options);
}

agents::LossStats LearnerCore::Learn(
    const agents::RolloutBuffer& buffer,
    const std::vector<agents::CuriositySample>& samples) {
  agents::LossStats stats;
  static obs::Gauge* const loss_gauge = obs::GetGauge("train.loss");
  for (int k = 0; k < config_.update_epochs; ++k) {
    agents::MiniBatch mb =
        buffer.SampleBatch(static_cast<size_t>(config_.batch_size), rng_);
    // Intrinsic module first (it reads mb before ComputeLoss adopts it),
    // matching the in-process employee's update order.
    if (curiosity_ != nullptr && !samples.empty()) {
      const std::vector<nn::Tensor> cparams = curiosity_->Parameters();
      nn::ZeroGradients(cparams);
      nn::Tensor closs = curiosity_->SampleLoss(
          samples, static_cast<size_t>(config_.batch_size), rng_);
      closs.Backward();
      intrinsic_optimizer_->Step();
    } else if (rnd_ != nullptr) {
      const std::vector<nn::Tensor> rparams = rnd_->Parameters();
      nn::ZeroGradients(rparams);
      nn::Tensor rloss = rnd_->Loss(mb);
      rloss.Backward();
      intrinsic_optimizer_->Step();
    }
    const std::vector<nn::Tensor> pparams = agent_.Parameters();
    nn::ZeroGradients(pparams);
    nn::Tensor loss = agent_.ComputeLoss(std::move(mb), &stats);
    loss.Backward();
    // Single-learner semantics: one gradient, one clip at max_grad_norm
    // (the in-process trainer's N-scaled bound applies to a SUM of N
    // employee gradients, which does not exist here).
    nn::ClipGradByGlobalNorm(pparams, config_.ppo.max_grad_norm);
    agent_.optimizer().Step();
  }
  loss_gauge->Set(stats.total);
  return stats;
}

// ---------------------------------------------------------------------------
// Merge + reference run
// ---------------------------------------------------------------------------

MergedRollout MergeRollouts(std::vector<RolloutPayload> payloads) {
  CEWS_CHECK(!payloads.empty()) << "MergeRollouts with no payloads";
  MergedRollout merged;
  merged.totals.xi = 0.0;
  std::vector<agents::RolloutBuffer> buffers;
  for (size_t rank = 0; rank < payloads.size(); ++rank) {
    RolloutPayload& p = payloads[rank];
    CEWS_CHECK_EQ(static_cast<size_t>(p.rank), rank)
        << "MergeRollouts: payloads must arrive in canonical rank order";
    for (agents::RolloutBuffer& b : p.buffers) {
      buffers.push_back(std::move(b));
    }
    merged.samples.insert(merged.samples.end(), p.samples.begin(),
                          p.samples.end());
    merged.totals.extrinsic_sum += p.stats.extrinsic_sum;
    merged.totals.intrinsic_sum += p.stats.intrinsic_sum;
    merged.totals.kappa += p.stats.kappa;
    merged.totals.xi += p.stats.xi;
    merged.totals.rho += p.stats.rho;
    merged.totals.env_steps += p.stats.env_steps;
  }
  merged.buffer = agents::MergeBuffers(std::move(buffers));
  return merged;
}

Result<DistTrainResult> TrainDistReference(const DistTrainerConfig& config,
                                           const env::Map& map) {
  DistTrainerConfig cfg = config;
  cfg.trainer = NormalizeConfig(config.trainer, map);
  if (cfg.trainer.num_employees <= 0 || cfg.trainer.episodes <= 0) {
    return Status::InvalidArgument(
        "TrainDistReference needs num_employees > 0 and episodes > 0");
  }
  runtime::SetGlobalPoolThreads(
      runtime::ResolveNumThreads(cfg.trainer.runtime_threads));

  Stopwatch watch;
  LearnerCore learner(cfg.trainer);
  if (!cfg.init_checkpoint.empty()) {
    CEWS_RETURN_IF_ERROR(learner.LoadPolicy(cfg.init_checkpoint));
  }
  std::vector<std::unique_ptr<EmployeeCore>> cores;
  cores.reserve(static_cast<size_t>(cfg.trainer.num_employees));
  for (int rank = 0; rank < cfg.trainer.num_employees; ++rank) {
    cores.push_back(std::make_unique<EmployeeCore>(cfg.trainer, map, rank));
  }

  DistTrainResult result;
  result.history.reserve(static_cast<size_t>(cfg.trainer.episodes));
  for (int it = 0; it < cfg.trainer.episodes; ++it) {
    Stopwatch iter_watch;
    const ParamUpdate update =
        learner.CurrentParams(static_cast<uint64_t>(it));
    std::vector<RolloutPayload> payloads;
    payloads.reserve(cores.size());
    for (std::unique_ptr<EmployeeCore>& core : cores) {
      core->SetParams(update);
      payloads.push_back(core->RunIteration(static_cast<uint64_t>(it)));
    }
    MergedRollout merged = MergeRollouts(std::move(payloads));
    learner.Learn(merged.buffer, merged.samples);
    result.history.push_back(MakeRecord(cfg.trainer, it, merged.totals,
                                        iter_watch.ElapsedSeconds()));
  }
  ParamUpdate final_params =
      learner.CurrentParams(static_cast<uint64_t>(cfg.trainer.episodes));
  result.final_policy = std::move(final_params.policy);
  result.final_intrinsic = std::move(final_params.intrinsic);
  result.seconds = watch.ElapsedSeconds();
  return result;
}

// ---------------------------------------------------------------------------
// ChiefServer
// ---------------------------------------------------------------------------

ChiefServer::ChiefServer(const DistTrainerConfig& config, env::Map map)
    : config_(config), map_(std::move(map)) {
  config_.trainer = NormalizeConfig(config.trainer, map_);
}

Status ChiefServer::Bind() {
  CEWS_ASSIGN_OR_RETURN(listener_, Listener::Bind(config_.address));
  bound_address_ = listener_.address();
  return Status::OK();
}

Status ChiefServer::Run(DistTrainResult* result, DeployLoop* deploy) {
  CEWS_CHECK(result != nullptr);
  const int n = config_.trainer.num_employees;
  if (n <= 0 || config_.trainer.episodes <= 0) {
    return Status::InvalidArgument(
        "chief needs num_employees > 0 and episodes > 0");
  }
  if (bound_address_.empty()) CEWS_RETURN_IF_ERROR(Bind());
  runtime::SetGlobalPoolThreads(
      runtime::ResolveNumThreads(config_.trainer.runtime_threads));

  static obs::Counter* const iterations = obs::GetCounter("dist.iterations");
  static obs::Counter* const merged_transitions =
      obs::GetCounter("dist.merged_transitions");
  static obs::Counter* const employees_counter =
      obs::GetCounter("dist.employees_connected");
  static obs::Histogram* const merge_ns = obs::GetHistogram("dist.merge_ns");

  Stopwatch total_watch;
  const uint64_t hash = ConfigHash(config_.trainer, map_);

  // Handshake: accept every employee, verify its (config, map) hash, and
  // slot it by rank. Duplicate or out-of-range ranks are configuration
  // errors, not recoverable conditions.
  std::vector<Channel> channels(static_cast<size_t>(n));
  std::vector<bool> connected(static_cast<size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    CEWS_ASSIGN_OR_RETURN(Channel ch,
                          listener_.Accept(config_.handshake_timeout_ms));
    CEWS_ASSIGN_OR_RETURN(
        Frame frame,
        ExpectFrame(ch, FrameType::kHello, config_.handshake_timeout_ms));
    CEWS_ASSIGN_OR_RETURN(const Hello hello, UnpackHello(frame.payload));
    if (hello.config_hash != hash) {
      return Status::FailedPrecondition(
          "employee rank " + std::to_string(hello.rank) +
          " trains a different problem (config/map hash mismatch)");
    }
    if (hello.rank >= static_cast<uint32_t>(n) ||
        connected[hello.rank]) {
      return Status::InvalidArgument(
          "bad or duplicate employee rank " + std::to_string(hello.rank) +
          " (world size " + std::to_string(n) + ")");
    }
    Hello welcome;
    welcome.rank = hello.rank;
    welcome.config_hash = hash;
    CEWS_RETURN_IF_ERROR(ch.Send(FrameType::kWelcome, PackHello(welcome)));
    channels[hello.rank] = std::move(ch);
    connected[hello.rank] = true;
    employees_counter->Increment();
  }

  LearnerCore learner(config_.trainer);
  if (!config_.init_checkpoint.empty()) {
    CEWS_RETURN_IF_ERROR(learner.LoadPolicy(config_.init_checkpoint));
  }
  result->history.reserve(static_cast<size_t>(config_.trainer.episodes));
  for (int it = 0; it < config_.trainer.episodes; ++it) {
    Stopwatch iter_watch;
    // Broadcast the same packed parameter frame to every rank.
    const std::string params =
        PackParams(learner.CurrentParams(static_cast<uint64_t>(it)));
    for (int rank = 0; rank < n; ++rank) {
      CEWS_RETURN_IF_ERROR(
          channels[static_cast<size_t>(rank)].Send(FrameType::kParams,
                                                   params));
    }
    // Collect in canonical rank order. Rank r+1's payload simply waits in
    // its socket buffer (the kernel blocks the employee's send if needed)
    // while rank r's is read — employees still compute concurrently; only
    // the chief's reads are serialized, which is what makes the merge
    // deterministic.
    std::vector<RolloutPayload> payloads;
    payloads.reserve(static_cast<size_t>(n));
    for (int rank = 0; rank < n; ++rank) {
      CEWS_ASSIGN_OR_RETURN(
          Frame frame,
          ExpectFrame(channels[static_cast<size_t>(rank)],
                      FrameType::kRollout, config_.liveness_timeout_ms));
      CEWS_ASSIGN_OR_RETURN(RolloutPayload payload,
                            UnpackRollout(frame.payload));
      if (payload.rank != static_cast<uint32_t>(rank) ||
          payload.iteration != static_cast<uint64_t>(it)) {
        return Status::IOError(
            "protocol error: rollout from rank " +
            std::to_string(payload.rank) + " iteration " +
            std::to_string(payload.iteration) + ", expected rank " +
            std::to_string(rank) + " iteration " + std::to_string(it));
      }
      payloads.push_back(std::move(payload));
    }
    MergedRollout merged;
    {
      obs::ScopedTimerNs merge_timer(merge_ns);
      merged = MergeRollouts(std::move(payloads));
    }
    merged_transitions->Add(merged.buffer.size());
    learner.Learn(merged.buffer, merged.samples);
    iterations->Increment();
    result->history.push_back(
        MakeRecord(config_.trainer, it, merged.totals,
                   iter_watch.ElapsedSeconds()));
    if (deploy != nullptr) {
      CEWS_RETURN_IF_ERROR(deploy->MaybePublish(it, learner.net()));
    }
  }
  for (int rank = 0; rank < n; ++rank) {
    CEWS_RETURN_IF_ERROR(
        channels[static_cast<size_t>(rank)].Send(FrameType::kShutdown, {}));
  }
  ParamUpdate final_params = learner.CurrentParams(
      static_cast<uint64_t>(config_.trainer.episodes));
  result->final_policy = std::move(final_params.policy);
  result->final_intrinsic = std::move(final_params.intrinsic);
  for (const Channel& ch : channels) {
    result->bytes_tx += ch.bytes_sent();
    result->bytes_rx += ch.bytes_received();
  }
  result->seconds = total_watch.ElapsedSeconds();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// EmployeeClient
// ---------------------------------------------------------------------------

EmployeeClient::EmployeeClient(const DistTrainerConfig& config, env::Map map,
                               int rank)
    : config_(config), map_(std::move(map)), rank_(rank) {
  config_.trainer = NormalizeConfig(config.trainer, map_);
}

Status EmployeeClient::Run() {
  if (rank_ < 0 || rank_ >= config_.trainer.num_employees) {
    return Status::InvalidArgument("employee rank " + std::to_string(rank_) +
                                   " out of range for world size " +
                                   std::to_string(
                                       config_.trainer.num_employees));
  }
  runtime::SetGlobalPoolThreads(
      runtime::ResolveNumThreads(config_.trainer.runtime_threads));
  DialOptions dial;
  dial.timeout_ms = config_.dial_timeout_ms;
  CEWS_ASSIGN_OR_RETURN(Channel channel,
                        Channel::Dial(config_.address, dial));
  const uint64_t hash = ConfigHash(config_.trainer, map_);
  Hello hello;
  hello.rank = static_cast<uint32_t>(rank_);
  hello.config_hash = hash;
  CEWS_RETURN_IF_ERROR(channel.Send(FrameType::kHello, PackHello(hello)));
  CEWS_ASSIGN_OR_RETURN(
      Frame welcome_frame,
      ExpectFrame(channel, FrameType::kWelcome,
                  config_.handshake_timeout_ms));
  CEWS_ASSIGN_OR_RETURN(const Hello welcome,
                        UnpackHello(welcome_frame.payload));
  if (welcome.config_hash != hash) {
    return Status::FailedPrecondition(
        "chief echoed a different config/map hash");
  }

  EmployeeCore core(config_.trainer, map_, rank_);
  while (true) {
    CEWS_ASSIGN_OR_RETURN(
        Frame frame,
        RecvSkippingHeartbeats(channel, config_.liveness_timeout_ms));
    if (frame.type == FrameType::kShutdown) return Status::OK();
    if (frame.type != FrameType::kParams) {
      return Status::IOError(std::string("protocol error: expected params "
                                         "or shutdown, got ") +
                             FrameTypeName(frame.type));
    }
    CEWS_ASSIGN_OR_RETURN(const ParamUpdate update,
                          UnpackParams(frame.payload));
    core.SetParams(update);
    // Liveness marker before the long silent stretch of rollout compute —
    // resets the chief's silence clock at iteration start.
    CEWS_RETURN_IF_ERROR(channel.SendHeartbeat());
    const RolloutPayload payload = core.RunIteration(update.iteration);
    CEWS_RETURN_IF_ERROR(
        channel.Send(FrameType::kRollout, PackRollout(payload)));
  }
}

// ---------------------------------------------------------------------------
// Fork helpers
// ---------------------------------------------------------------------------

Result<std::vector<pid_t>> SpawnEmployees(const DistTrainerConfig& config,
                                          const env::Map& map) {
  std::vector<pid_t> pids;
  pids.reserve(static_cast<size_t>(config.trainer.num_employees));
  for (int rank = 0; rank < config.trainer.num_employees; ++rank) {
    const pid_t pid = fork();
    if (pid < 0) {
      // Undo partial spawns so the caller is not left with orphans.
      for (const pid_t p : pids) kill(p, SIGKILL);
      for (const pid_t p : pids) {
        int ignored;
        while (waitpid(p, &ignored, 0) < 0 && errno == EINTR) {}
      }
      return Status::IOError("fork failed for employee rank " +
                             std::to_string(rank));
    }
    if (pid == 0) {
      // Child: run the employee and leave without unwinding the parent's
      // stack or running its atexit handlers (_exit, not exit/return).
      EmployeeClient client(config, map, rank);
      const Status status = client.Run();
      if (!status.ok()) {
        std::fprintf(stderr, "employee rank %d failed: %s\n", rank,
                     status.ToString().c_str());
        _exit(1);
      }
      _exit(0);
    }
    pids.push_back(pid);
  }
  return pids;
}

Status ReapEmployees(const std::vector<pid_t>& pids) {
  Status first_error = Status::OK();
  for (size_t rank = 0; rank < pids.size(); ++rank) {
    int wstatus = 0;
    while (waitpid(pids[rank], &wstatus, 0) < 0) {
      if (errno != EINTR) {
        if (first_error.ok()) {
          first_error = Status::IOError("waitpid failed for employee rank " +
                                        std::to_string(rank));
        }
        break;
      }
    }
    if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
      if (first_error.ok()) {
        first_error = Status::Internal(
            "employee rank " + std::to_string(rank) +
            (WIFEXITED(wstatus)
                 ? " exited with code " + std::to_string(WEXITSTATUS(wstatus))
                 : " terminated abnormally"));
      }
    }
  }
  return first_error;
}

}  // namespace cews::dist
