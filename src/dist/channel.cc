#include "dist/channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace cews::dist {

namespace {

obs::Counter* BytesTxCounter() {
  static obs::Counter* const c = obs::GetCounter("dist.bytes_tx");
  return c;
}

obs::Counter* BytesRxCounter() {
  static obs::Counter* const c = obs::GetCounter("dist.bytes_rx");
  return c;
}

/// Parsed form of a transport address.
struct ParsedAddress {
  bool is_unix = false;
  std::string unix_path;
  in_addr_t ip = 0;
  uint16_t port = 0;
};

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress parsed;
  if (address.rfind("unix:", 0) == 0) {
    parsed.is_unix = true;
    parsed.unix_path = address.substr(5);
    if (parsed.unix_path.empty()) {
      return Status::InvalidArgument("empty unix socket path in '" +
                                     address + "'");
    }
    sockaddr_un probe{};
    if (parsed.unix_path.size() >= sizeof(probe.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: '" +
                                     parsed.unix_path + "'");
    }
    return parsed;
  }
  if (address.rfind("tcp:", 0) == 0) {
    const std::string rest = address.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("tcp address needs host:port, got '" +
                                     address + "'");
    }
    const std::string host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    in_addr ip{};
    if (inet_pton(AF_INET, host.c_str(), &ip) != 1) {
      return Status::InvalidArgument(
          "tcp host must be a numeric IPv4 address, got '" + host + "'");
    }
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0' || port < 0 ||
        port > 65535) {
      return Status::InvalidArgument("bad tcp port '" + port_str + "'");
    }
    parsed.ip = ip.s_addr;
    parsed.port = static_cast<uint16_t>(port);
    return parsed;
  }
  return Status::InvalidArgument(
      "address must be unix:<path> or tcp:<ip>:<port>, got '" + address +
      "'");
}

/// poll() for `events` on `fd`, at most `timeout_ms` (<= 0 forever),
/// retrying EINTR against the original deadline. Returns +1 ready,
/// 0 timeout, -1 error (errno set).
int PollFd(int fd, short events, int timeout_ms) {
  const uint64_t deadline_ns =
      timeout_ms > 0
          ? Stopwatch::NowNs() + static_cast<uint64_t>(timeout_ms) * 1000000u
          : 0;
  while (true) {
    int wait = -1;
    if (timeout_ms > 0) {
      const uint64_t now = Stopwatch::NowNs();
      if (now >= deadline_ns) return 0;
      wait = static_cast<int>((deadline_ns - now) / 1000000u) + 1;
    }
    pollfd pfd{fd, events, 0};
    const int rc = poll(&pfd, 1, wait);
    if (rc >= 0) return rc > 0 ? 1 : 0;
    if (errno != EINTR) return -1;
  }
}

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

// ---------------------------------------------------------------------------
// Channel
// ---------------------------------------------------------------------------

Channel::Channel(Channel&& other) noexcept
    : fd_(other.fd_),
      reader_(std::move(other.reader_)),
      bytes_sent_(other.bytes_sent_),
      bytes_received_(other.bytes_received_) {
  other.fd_ = -1;
}

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    bytes_sent_ = other.bytes_sent_;
    bytes_received_ = other.bytes_received_;
    other.fd_ = -1;
  }
  return *this;
}

Channel::~Channel() { Close(); }

void Channel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Channel> Channel::Dial(const std::string& address,
                              const DialOptions& options) {
  CEWS_ASSIGN_OR_RETURN(const ParsedAddress parsed, ParseAddress(address));
  const uint64_t deadline_ns =
      Stopwatch::NowNs() +
      static_cast<uint64_t>(options.timeout_ms > 0 ? options.timeout_ms : 0) *
          1000000u;
  int backoff_ms = options.initial_backoff_ms > 0 ? options.initial_backoff_ms
                                                  : 1;
  std::string last_error = "never attempted";
  while (true) {
    const int fd = socket(parsed.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoStatus("socket");
    int rc;
    if (parsed.is_unix) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, parsed.unix_path.c_str(),
                   sizeof(addr.sun_path) - 1);
      do {
        rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
      } while (rc < 0 && errno == EINTR);
    } else {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = parsed.ip;
      addr.sin_port = htons(parsed.port);
      do {
        rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
      } while (rc < 0 && errno == EINTR);
    }
    if (rc == 0) return Channel(fd);
    last_error = std::strerror(errno);
    ::close(fd);
    // The listener may simply not exist yet (chief still starting up):
    // back off and retry until the dial deadline.
    if (options.timeout_ms <= 0 || Stopwatch::NowNs() >= deadline_ns) {
      return Status::DeadlineExceeded("cannot connect to " + address + " within " +
                                 std::to_string(options.timeout_ms) +
                                 "ms: " + last_error);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, options.max_backoff_ms > 0
                                              ? options.max_backoff_ms
                                              : backoff_ms);
  }
}

Status Channel::Send(FrameType type, std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("Send on a closed channel");
  const std::string frame = EncodeFrame(type, payload);
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = send(fd_, frame.data() + off, frame.size() - off,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send " + std::string(FrameTypeName(type)) +
                         " frame");
    }
    off += static_cast<size_t>(n);
  }
  bytes_sent_ += frame.size();
  BytesTxCounter()->Add(frame.size());
  return Status::OK();
}

Result<Frame> Channel::Recv(int silence_timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("Recv on a closed channel");
  char chunk[16384];
  while (true) {
    if (reader_.HasFrame()) return reader_.PopFrame();
    // Each wait covers one silence window; any arriving bytes reset it by
    // looping back here.
    const int rc = PollFd(fd_, POLLIN, silence_timeout_ms);
    if (rc < 0) return ErrnoStatus("poll");
    if (rc == 0) {
      return Status::DeadlineExceeded(
          "peer silent for " + std::to_string(silence_timeout_ms) +
          "ms (liveness timeout)");
    }
    ssize_t n;
    do {
      n = read(fd_, chunk, sizeof(chunk));
    } while (n < 0 && errno == EINTR);
    if (n < 0) return ErrnoStatus("read");
    if (n == 0) return Status::IOError("peer closed the connection");
    bytes_received_ += static_cast<size_t>(n);
    BytesRxCounter()->Add(static_cast<uint64_t>(n));
    CEWS_RETURN_IF_ERROR(reader_.Feed(chunk, static_cast<size_t>(n)));
  }
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      address_(std::move(other.address_)),
      unix_path_(std::move(other.unix_path_)) {
  other.fd_ = -1;
  other.unix_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    address_ = std::move(other.address_);
    unix_path_ = std::move(other.unix_path_);
    other.fd_ = -1;
    other.unix_path_.clear();
  }
  return *this;
}

Listener::~Listener() { Close(); }

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

Result<Listener> Listener::Bind(const std::string& address) {
  CEWS_ASSIGN_OR_RETURN(const ParsedAddress parsed, ParseAddress(address));
  Listener listener;
  if (parsed.is_unix) {
    // A stale socket file from a crashed previous run would make bind fail
    // forever; remove it first (live listeners on the same path are a
    // configuration error this cannot distinguish — documented).
    ::unlink(parsed.unix_path.c_str());
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoStatus("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, parsed.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const Status s = ErrnoStatus("bind " + address);
      ::close(fd);
      return s;
    }
    if (listen(fd, 64) < 0) {
      const Status s = ErrnoStatus("listen " + address);
      ::close(fd);
      ::unlink(parsed.unix_path.c_str());
      return s;
    }
    listener.fd_ = fd;
    listener.unix_path_ = parsed.unix_path;
    listener.address_ = address;
    return listener;
  }

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = parsed.ip;
  addr.sin_port = htons(parsed.port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = ErrnoStatus("bind " + address);
    ::close(fd);
    return s;
  }
  if (listen(fd, 64) < 0) {
    const Status s = ErrnoStatus("listen " + address);
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const Status s = ErrnoStatus("getsockname");
    ::close(fd);
    return s;
  }
  char ip_str[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &bound.sin_addr, ip_str, sizeof(ip_str));
  listener.fd_ = fd;
  listener.address_ =
      "tcp:" + std::string(ip_str) + ":" + std::to_string(ntohs(bound.sin_port));
  return listener;
}

Result<Channel> Listener::Accept(int timeout_ms) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("Accept on a closed listener");
  }
  const int rc = PollFd(fd_, POLLIN, timeout_ms);
  if (rc < 0) return ErrnoStatus("poll");
  if (rc == 0) {
    return Status::DeadlineExceeded("no connection within " +
                                    std::to_string(timeout_ms) + "ms");
  }
  int client;
  do {
    client = accept(fd_, nullptr, nullptr);
  } while (client < 0 && errno == EINTR);
  if (client < 0) return ErrnoStatus("accept");
  return Channel(client);
}

// ---------------------------------------------------------------------------
// Protocol helpers
// ---------------------------------------------------------------------------

Result<Frame> RecvSkippingHeartbeats(Channel& channel,
                                     int silence_timeout_ms) {
  while (true) {
    CEWS_ASSIGN_OR_RETURN(Frame frame, channel.Recv(silence_timeout_ms));
    if (frame.type == FrameType::kHeartbeat) {
      static obs::Counter* const heartbeats =
          obs::GetCounter("dist.heartbeats_rx");
      heartbeats->Increment();
      continue;
    }
    return frame;
  }
}

Result<Frame> ExpectFrame(Channel& channel, FrameType want,
                          int silence_timeout_ms) {
  CEWS_ASSIGN_OR_RETURN(Frame frame,
                        RecvSkippingHeartbeats(channel, silence_timeout_ms));
  if (frame.type != want) {
    return Status::IOError(std::string("protocol error: expected ") +
                           FrameTypeName(want) + " frame, got " +
                           FrameTypeName(frame.type));
  }
  return frame;
}

}  // namespace cews::dist
