#include "dist/deploy_loop.h"

#include <memory>

#include "agents/eval.h"
#include "agents/quant_policy.h"
#include "common/check.h"
#include "common/log.h"
#include "nn/quant.h"
#include "nn/serialize.h"
#include "obs/metrics.h"

namespace cews::dist {

namespace {

/// Rollout steps of the int8 agreement probe: enough encoded states
/// (eval_envs per step) to expose a quantization-induced behavior change,
/// cheap enough to run at every gate.
constexpr int kAgreementProbeSteps = 8;

}  // namespace

DeployLoop::DeployLoop(const DeployOptions& options,
                       const agents::TrainerConfig& config,
                       const env::Map& map, serve::Fleet* fleet)
    : options_(options),
      encoder_(config.encoder),
      eval_vec_(std::make_unique<env::VecEnv>(config.env, map,
                                              options.eval_envs)),
      eval_rng_(options.eval_seed),
      fleet_(fleet) {
  CEWS_CHECK(fleet_ != nullptr) << "DeployLoop needs a live fleet";
  CEWS_CHECK_GE(options_.publish_every, 1);
  CEWS_CHECK_GE(options_.eval_envs, 1);
}

Status DeployLoop::MaybePublish(int iteration, const agents::PolicyNet& net) {
  if ((iteration + 1) % options_.publish_every != 0) return Status::OK();

  static obs::Counter* const accepted_counter =
      obs::GetCounter("dist.publish.accepted");
  static obs::Counter* const rejected_counter =
      obs::GetCounter("dist.publish.rejected");
  static obs::Histogram* const eval_ns =
      obs::GetHistogram("dist.publish.eval_ns");

  double score = 0.0;
  {
    obs::ScopedTimerNs timer(eval_ns);
    const std::vector<agents::EvalResult> results = agents::EvaluatePolicyVec(
        net, *eval_vec_, encoder_, eval_rng_, options_.deterministic_eval);
    for (const agents::EvalResult& r : results) score += r.kappa;
    score /= static_cast<double>(results.size());
  }

  // The first gate has no published baseline — anything beats serving the
  // fleet's untrained epoch-0 parameters. After that, only candidates that
  // hold the last PUBLISHED score (minus min_delta) get through; a rejected
  // candidate leaves baseline and fleet untouched, so a later recovered
  // policy is judged against the model actually serving, not against the
  // regression.
  if (has_published_ && score < published_score_ - options_.min_delta) {
    ++rejected_;
    rejected_counter->Increment();
    CEWS_LOG(Info) << "deploy gate REJECTED iteration " << iteration
                   << ": kappa " << score << " < published "
                   << published_score_ << " - " << options_.min_delta;
    return Status::OK();
  }

  // Int8 fleets additionally gate on action agreement: quantize the
  // candidate exactly as Publish will, replay a short deterministic probe
  // rollout, and reject if the quantized policy's argmax decisions diverge
  // from fp32 beyond the configured tolerance. The probe uses its own rng
  // and deterministic actions, so it can never perturb training or eval
  // random streams.
  if (fleet_->precision() == serve::Precision::kInt8) {
    const nn::quant::QuantizedParams qp =
        agents::QuantizePolicyParams(net.Parameters());
    agents::AgreementStats stats;
    eval_vec_->Reset();
    Rng probe_rng(options_.eval_seed ^ 0xA5A5A5A55A5A5A5AULL);
    std::vector<const env::Env*> live;
    std::vector<int> live_index;
    for (int step = 0; step < kAgreementProbeSteps && !eval_vec_->AllDone();
         ++step) {
      live.clear();
      live_index.clear();
      for (int i = 0; i < eval_vec_->size(); ++i) {
        if (!eval_vec_->env(i).Done()) {
          live.push_back(&eval_vec_->env(i));
          live_index.push_back(i);
        }
      }
      const std::vector<float> states = encoder_.EncodeBatch(live);
      const int n = static_cast<int>(live.size());
      const agents::AgreementStats s =
          agents::ActionAgreementOnStates(net, qp, states, n);
      stats.decisions += s.decisions;
      stats.matched += s.matched;
      const std::vector<agents::ActResult> acts = agents::SamplePolicyBatch(
          net, states, n, probe_rng, /*deterministic=*/true);
      for (size_t k = 0; k < live_index.size(); ++k) {
        eval_vec_->env(live_index[k]).Step(acts[k].actions);
      }
    }
    static obs::Gauge* const agreement_gauge =
        obs::GetGauge("dist.publish.agreement");
    agreement_gauge->Set(stats.rate());
    if (stats.rate() < options_.agreement_min) {
      ++rejected_;
      rejected_counter->Increment();
      CEWS_LOG(Info) << "deploy gate REJECTED iteration " << iteration
                     << ": int8 action agreement " << stats.rate() << " < "
                     << options_.agreement_min << " (" << stats.matched
                     << "/" << stats.decisions << " decisions)";
      return Status::OK();
    }
  }

  CEWS_RETURN_IF_ERROR(
      nn::SaveParameters(options_.snapshot_path, net.Parameters()));
  CEWS_RETURN_IF_ERROR(fleet_->PublishFromFile(
      options_.scenario, options_.snapshot_path, /*require_crc=*/true));
  published_score_ = score;
  has_published_ = true;
  ++accepted_;
  accepted_counter->Increment();
  uint64_t epoch = 0;
  if (Result<uint64_t> e = fleet_->Epoch(options_.scenario); e.ok()) {
    epoch = e.value();
  }
  CEWS_LOG(Info) << "deploy gate ACCEPTED iteration " << iteration
                 << ": kappa " << score << " published to scenario '"
                 << options_.scenario << "' epoch " << epoch;
  return Status::OK();
}

}  // namespace cews::dist
