// cews::dist — payload (de)serialization of the distributed trainer: what
// goes inside kHello/kParams/kRollout frames.
//
// Exactness contract: every float/double crosses the wire as its raw bit
// pattern (memcpy, little-endian both sides — the only platforms this repo
// targets), so pack -> unpack is the identity on values. This is what makes
// the fork-mode distributed run bitwise-identical to the in-process
// reference (TrainDistReference): no text formatting, no rounding, ever.
//
// Unpack functions are defensive: every length is bounds-checked against
// the remaining payload before any allocation is sized from it, and
// structural invariants (advantages matching transition counts, per-worker
// array sizes) are validated — a frame that passed the CRC can still be a
// version-skewed peer's message.
#ifndef CEWS_DIST_WIRE_H_
#define CEWS_DIST_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "agents/chief_employee.h"
#include "agents/curiosity.h"
#include "agents/rollout.h"
#include "common/result.h"
#include "env/map.h"

namespace cews::dist {

/// kHello handshake: the employee announces its rank and the hash of its
/// (config, map) pair; the chief echoes it back in kWelcome. A mismatch
/// means the two processes would train different problems — fatal.
struct Hello {
  uint32_t rank = 0;
  uint64_t config_hash = 0;
};

/// kParams broadcast: flat trainable values of the global policy net and
/// (when an intrinsic module is configured) its trainable parameters.
/// Frozen parts (curiosity embedding, RND target) are never shipped — they
/// replicate across processes via the shared seed derivations.
struct ParamUpdate {
  uint64_t iteration = 0;
  std::vector<float> policy;
  std::vector<float> intrinsic;
};

/// Per-iteration episode aggregates one employee reports alongside its
/// buffers (the dist equivalent of ChiefEmployeeTrainer's accumulator).
struct RolloutStats {
  double extrinsic_sum = 0.0;  ///< Summed over all instances.
  double intrinsic_sum = 0.0;
  double kappa = 0.0;  ///< Instance means (VecEnv::MeanKappa etc.).
  double xi = 1.0;
  double rho = 0.0;
  int64_t env_steps = 0;
};

/// kRollout payload: everything one employee's iteration produced — one
/// GAE-completed buffer per environment instance, the curiosity samples
/// collected during the rollout (spatial-curiosity mode only), and the
/// episode stats.
struct RolloutPayload {
  uint32_t rank = 0;
  uint64_t iteration = 0;
  std::vector<agents::RolloutBuffer> buffers;
  std::vector<agents::CuriositySample> samples;
  RolloutStats stats;
};

std::string PackHello(const Hello& hello);
Result<Hello> UnpackHello(const std::string& payload);

std::string PackParams(const ParamUpdate& update);
Result<ParamUpdate> UnpackParams(const std::string& payload);

std::string PackRollout(const RolloutPayload& payload);
Result<RolloutPayload> UnpackRollout(const std::string& payload);

/// Fingerprint of the training problem: every TrainerConfig field that
/// shapes the computation plus the full map geometry, CRC-folded. Two
/// processes with equal hashes run the same problem; the handshake rejects
/// anything else before a single parameter crosses the wire.
uint64_t ConfigHash(const agents::TrainerConfig& config,
                    const env::Map& map);

}  // namespace cews::dist

#endif  // CEWS_DIST_WIRE_H_
