// cews::dist — multi-process chief/employee training (DESIGN.md §7).
//
// Roles:
//   - Employees are pure rollout actors: each holds a local model copy,
//     runs the shared vectorized rollout (agents/trainer_core.h) over its
//     own environments, completes GAE per instance, and ships the packed
//     buffers (plus curiosity samples and episode stats) to the chief.
//   - The chief is the single learner: it broadcasts the global parameters
//     each iteration, merges the employee payloads in canonical rank order,
//     and performs every PPO/intrinsic update itself.
//
// Determinism: given a fixed employee count N, a fixed seed, and the exact
// float round-trip of the wire format (dist/wire.h), a distributed run is
// bitwise-identical to TrainDistReference — the same EmployeeCore and
// LearnerCore objects driven in rank order inside one process with no
// sockets. The equivalence holds by construction: rank-ordered merge fixes
// the transition order, the broadcast fixes every actor's parameters, and
// per-rank rollout rngs are derived exactly as the in-process trainer
// derives per-employee rngs (seed * 7919 + rank). Note the learning
// semantics intentionally differ from ChiefEmployeeTrainer: that trainer
// sums per-employee gradients; this one trains on the merged transition
// pool with a single learner (one gradient per minibatch, clipped at
// ppo.max_grad_norm, not N * max_grad_norm).
//
// Fork mode (SpawnEmployees): for tests, CI smoke and single-host bench
// runs, the employees are forked from the launching process. Children must
// be forked BEFORE any threads exist (CHECK: keep runtime_threads = 1 and
// create the serving fleet only after spawning); each child runs
// EmployeeClient::Run and _exits without returning.
#ifndef CEWS_DIST_TRAINER_H_
#define CEWS_DIST_TRAINER_H_

#include <sys/types.h>

#include <memory>
#include <string>
#include <vector>

#include "agents/chief_employee.h"
#include "agents/curiosity.h"
#include "agents/ppo.h"
#include "agents/reward_normalizer.h"
#include "agents/rnd.h"
#include "common/result.h"
#include "dist/channel.h"
#include "dist/wire.h"
#include "env/map.h"
#include "env/state_encoder.h"
#include "env/vec_env.h"
#include "nn/optimizer.h"

namespace cews::dist {

class DeployLoop;

/// Configuration of one distributed run: the full trainer config (episodes
/// double as distributed iterations; num_employees is the employee process
/// count) plus transport knobs.
struct DistTrainerConfig {
  agents::TrainerConfig trainer;

  /// Transport address ("unix:<path>" or "tcp:<ip>:<port>", channel.h).
  std::string address = "unix:/tmp/cews_dist.sock";

  /// Total dial budget of an employee connecting to a chief that may not
  /// have bound its socket yet (exponential backoff underneath).
  int dial_timeout_ms = 15000;
  /// Silence budget of the handshake (hello/welcome) exchanges.
  int handshake_timeout_ms = 15000;
  /// Per-peer liveness window: a peer silent for this long is declared
  /// dead (DeadlineExceeded), which aborts training — the fixed-N
  /// determinism contract has no re-balancing path. Must comfortably cover
  /// one full rollout + learn, since single-threaded peers cannot
  /// heartbeat mid-computation.
  int liveness_timeout_ms = 120000;

  /// Optional warm-start checkpoint the chief loads into the global policy
  /// before the first broadcast. Loaded in STRICT mode (LoadOptions::
  /// require_crc): the distributed path fans these parameters out to every
  /// employee, so a footer-less file with no integrity check is rejected.
  /// Employees never read it — they get the values via the broadcast.
  std::string init_checkpoint;
};

/// Everything a distributed (or reference) run produced. `final_policy` /
/// `final_intrinsic` are the flat global parameter values after the last
/// iteration — what the equivalence test compares bitwise.
struct DistTrainResult {
  std::vector<agents::EpisodeRecord> history;
  double seconds = 0.0;
  std::vector<float> final_policy;
  std::vector<float> final_intrinsic;
  /// Chief-side transport totals (all employee channels, frame overhead
  /// included). Zero for TrainDistReference.
  uint64_t bytes_tx = 0;
  uint64_t bytes_rx = 0;
};

/// Auto-fills the dependent TrainerConfig dimensions from the map exactly
/// as ChiefEmployeeTrainer's constructor does (net.num_workers, curiosity
/// cells, rnd.state_size, ...). Chief and employees must hash and build
/// from the SAME normalized config — call this once at every entry point.
agents::TrainerConfig NormalizeConfig(const agents::TrainerConfig& config,
                                      const env::Map& map);

/// One employee's local state: policy/intrinsic model copies, environments,
/// rollout rng. Pure actor — never updates parameters itself.
class EmployeeCore {
 public:
  /// `config` must already be normalized. Rng and model seeds derive from
  /// (config.seed, rank) exactly like the in-process trainer's employees,
  /// so frozen intrinsic parts (curiosity embedding, RND target) replicate
  /// across processes without ever crossing the wire.
  EmployeeCore(const agents::TrainerConfig& config, const env::Map& map,
               int rank);

  /// Overwrites the local trainable parameters with a broadcast.
  void SetParams(const ParamUpdate& update);

  /// One full iteration: vectorized rollout over all local instances,
  /// per-instance GAE, stats aggregation. The result is what goes on the
  /// wire (or straight to the reference learner).
  RolloutPayload RunIteration(uint64_t iteration);

  int rank() const { return rank_; }

 private:
  agents::TrainerConfig config_;
  env::Map map_;
  env::StateEncoder encoder_;
  agents::PpoAgent agent_;
  std::unique_ptr<agents::SpatialCuriosity> curiosity_;
  std::unique_ptr<agents::RndCuriosity> rnd_;
  env::VecEnv vec_;
  Rng rng_;
  std::vector<agents::RewardNormalizer> normalizers_;
  int rank_ = 0;
};

/// The chief's single-learner state: global models, optimizers, learner
/// rng. Consumes merged rollouts; produces parameter broadcasts.
class LearnerCore {
 public:
  explicit LearnerCore(const agents::TrainerConfig& config);

  /// Flat snapshot of the current trainable parameters.
  ParamUpdate CurrentParams(uint64_t iteration) const;

  /// `update_epochs` rounds of minibatch updates on the merged pool:
  /// per round one packed minibatch (learner rng), intrinsic-module
  /// backward + step, PPO backward + clip + step. Returns the last
  /// round's loss stats.
  agents::LossStats Learn(const agents::RolloutBuffer& buffer,
                          const std::vector<agents::CuriositySample>& samples);

  const agents::PolicyNet& net() const { return agent_.net(); }

  /// Strict (CRC-required) warm-start load into the global policy. See
  /// DistTrainerConfig::init_checkpoint.
  Status LoadPolicy(const std::string& path);

 private:
  agents::TrainerConfig config_;
  agents::PpoAgent agent_;
  std::unique_ptr<agents::SpatialCuriosity> curiosity_;
  std::unique_ptr<agents::RndCuriosity> rnd_;
  std::unique_ptr<nn::Adam> intrinsic_optimizer_;
  Rng rng_;
};

/// Rank-ordered merge of one iteration's employee payloads: buffers
/// concatenate rank-major (rank 0's instances first), curiosity samples
/// likewise, stats sum. CHECK-fails unless payloads[i].rank == i — the
/// canonical order IS the determinism argument, so a mis-ordered call is a
/// bug, not data.
struct MergedRollout {
  agents::RolloutBuffer buffer;
  std::vector<agents::CuriositySample> samples;
  RolloutStats totals;  ///< Sums over employees (kappa/xi/rho summed too).
};
MergedRollout MergeRollouts(std::vector<RolloutPayload> payloads);

/// Single-process reference semantics: the same EmployeeCore/LearnerCore
/// objects driven in rank order with no transport. The distributed run
/// must match this bitwise — that is what dist_trainer_equivalence_test
/// asserts.
Result<DistTrainResult> TrainDistReference(const DistTrainerConfig& config,
                                           const env::Map& map);

/// The chief process: accepts trainer.num_employees employees, drives the
/// broadcast/merge/learn loop, and (optionally) runs the publish gate.
class ChiefServer {
 public:
  ChiefServer(const DistTrainerConfig& config, env::Map map);

  /// Binds the listener. Separate from Run so callers using "tcp:...:0"
  /// can read the resolved address() before employees dial.
  Status Bind();
  const std::string& address() const { return bound_address_; }

  /// Accepts all employees, runs every iteration, shuts employees down.
  /// `deploy` (may be null) gets MaybePublish after each iteration.
  /// Any employee failure (handshake mismatch, liveness timeout, corrupt
  /// frame) aborts the run with the underlying error.
  Status Run(DistTrainResult* result, DeployLoop* deploy = nullptr);

 private:
  DistTrainerConfig config_;
  env::Map map_;
  Listener listener_;
  std::string bound_address_;
};

/// One employee process: dials the chief, handshakes, then loops
/// params -> rollout until the chief says shutdown.
class EmployeeClient {
 public:
  EmployeeClient(const DistTrainerConfig& config, env::Map map, int rank);
  Status Run();

 private:
  DistTrainerConfig config_;
  env::Map map_;
  int rank_ = 0;
};

/// Forks trainer.num_employees child processes, each running
/// EmployeeClient(rank).Run() and _exit-ing with 0/1. MUST be called while
/// the process is still single-threaded (before any fleet, reporter or
/// kernel pool threads exist) — a forked child of a multi-threaded process
/// inherits a poisoned lock state.
Result<std::vector<pid_t>> SpawnEmployees(const DistTrainerConfig& config,
                                          const env::Map& map);

/// waitpid()s every child; non-zero/abnormal exits become an error naming
/// the rank.
Status ReapEmployees(const std::vector<pid_t>& pids);

}  // namespace cews::dist

#endif  // CEWS_DIST_TRAINER_H_
