#include "dist/wire.h"

#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/crc32.h"

namespace cews::dist {

namespace {

// Payload-local (sub-frame) serialization. Frames already carry the CRC;
// these writers/readers only need exact, bounds-checked field packing.

class ByteWriter {
 public:
  void U8(uint8_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }

  void F32Vec(const std::vector<float>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(float));
  }

  void I32Vec(const std::vector<int>& v) {
    U64(v.size());
    for (int x : v) Raw(&x, sizeof(x));
  }

  void Raw(const void* p, size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked forward-only reader (the nn/serialize.cc pattern): every
/// Read checks the remaining byte budget, so a lying length field fails
/// cleanly instead of over-reading.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool Read(void* dst, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool U8(uint8_t* v) { return Read(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Read(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Read(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Read(v, sizeof(*v)); }
  bool F32(float* v) { return Read(v, sizeof(*v)); }
  bool F64(double* v) { return Read(v, sizeof(*v)); }

  bool F32Vec(std::vector<float>* v) {
    uint64_t n = 0;
    if (!U64(&n)) return false;
    if (remaining() < n * sizeof(float)) return false;
    v->resize(n);
    return Read(v->data(), n * sizeof(float));
  }

  bool I32Vec(std::vector<int>* v) {
    uint64_t n = 0;
    if (!U64(&n)) return false;
    if (remaining() < n * sizeof(int32_t)) return false;
    v->resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      int32_t x = 0;
      if (!Read(&x, sizeof(x))) return false;
      (*v)[i] = x;
    }
    return true;
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::IOError(std::string("dist payload corrupt: truncated ") +
                         what);
}

void PackBuffer(ByteWriter& w, const agents::RolloutBuffer& buffer) {
  w.U64(buffer.size());
  for (size_t i = 0; i < buffer.size(); ++i) {
    const agents::Transition& t = buffer[i];
    w.F32Vec(t.state);
    w.I32Vec(t.moves);
    w.I32Vec(t.charges);
    w.F32(t.log_prob);
    w.F32(t.value);
    w.F32(t.reward);
    w.U8(t.done ? 1 : 0);
  }
  const bool has_adv = !buffer.advantages().empty();
  w.U8(has_adv ? 1 : 0);
  if (has_adv) {
    w.F32Vec(buffer.advantages());
    w.F32Vec(buffer.returns());
  }
}

Result<agents::RolloutBuffer> UnpackBuffer(ByteReader& r) {
  uint64_t count = 0;
  if (!r.U64(&count)) return Truncated("buffer header");
  // A transition is at least ~30 bytes on the wire; anything claiming more
  // entries than remaining bytes is corrupt.
  if (count > r.remaining()) return Truncated("buffer (implausible count)");
  std::vector<agents::Transition> transitions;
  transitions.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    agents::Transition t;
    uint8_t done = 0;
    if (!r.F32Vec(&t.state) || !r.I32Vec(&t.moves) ||
        !r.I32Vec(&t.charges) || !r.F32(&t.log_prob) || !r.F32(&t.value) ||
        !r.F32(&t.reward) || !r.U8(&done)) {
      return Truncated("transition");
    }
    if (t.moves.size() != t.charges.size()) {
      return Status::IOError(
          "dist payload corrupt: per-worker move/charge size mismatch");
    }
    t.done = done != 0;
    transitions.push_back(std::move(t));
  }
  uint8_t has_adv = 0;
  if (!r.U8(&has_adv)) return Truncated("advantage flag");
  std::vector<float> advantages, returns;
  if (has_adv != 0) {
    if (!r.F32Vec(&advantages) || !r.F32Vec(&returns)) {
      return Truncated("advantages");
    }
    if (advantages.size() != transitions.size() ||
        returns.size() != transitions.size()) {
      return Status::IOError(
          "dist payload corrupt: advantage count does not match "
          "transitions");
    }
  }
  return agents::RolloutBuffer::FromParts(
      std::move(transitions), std::move(advantages), std::move(returns));
}

/// CRC-folding accumulator widened to 64 bits by running two differently
/// salted CRC-32 streams — cheap, stable, and good enough to catch any
/// real-world config/map divergence (this is a sanity handshake, not
/// crypto).
class Fingerprint {
 public:
  Fingerprint() {
    const uint32_t salt = 0x9E3779B9u;
    hi_.Update(&salt, sizeof(salt));
  }

  void Raw(const void* p, size_t n) {
    lo_.Update(p, n);
    hi_.Update(p, n);
  }

  template <typename T>
  void Value(const T& v) {
    Raw(&v, sizeof(v));
  }

  uint64_t Hash() const {
    return (static_cast<uint64_t>(hi_.Value()) << 32) | lo_.Value();
  }

 private:
  Crc32 lo_, hi_;
};

}  // namespace

std::string PackHello(const Hello& hello) {
  ByteWriter w;
  w.U32(hello.rank);
  w.U64(hello.config_hash);
  return w.Take();
}

Result<Hello> UnpackHello(const std::string& payload) {
  ByteReader r(payload.data(), payload.size());
  Hello hello;
  if (!r.U32(&hello.rank) || !r.U64(&hello.config_hash)) {
    return Truncated("hello");
  }
  if (r.remaining() != 0) {
    return Status::IOError("dist payload corrupt: trailing bytes in hello");
  }
  return hello;
}

std::string PackParams(const ParamUpdate& update) {
  ByteWriter w;
  w.U64(update.iteration);
  w.F32Vec(update.policy);
  w.F32Vec(update.intrinsic);
  return w.Take();
}

Result<ParamUpdate> UnpackParams(const std::string& payload) {
  ByteReader r(payload.data(), payload.size());
  ParamUpdate update;
  if (!r.U64(&update.iteration) || !r.F32Vec(&update.policy) ||
      !r.F32Vec(&update.intrinsic)) {
    return Truncated("params");
  }
  if (r.remaining() != 0) {
    return Status::IOError("dist payload corrupt: trailing bytes in params");
  }
  return update;
}

std::string PackRollout(const RolloutPayload& payload) {
  ByteWriter w;
  w.U32(payload.rank);
  w.U64(payload.iteration);
  w.U64(payload.buffers.size());
  for (const agents::RolloutBuffer& b : payload.buffers) PackBuffer(w, b);
  w.U64(payload.samples.size());
  for (const agents::CuriositySample& s : payload.samples) {
    w.U32(static_cast<uint32_t>(s.worker));
    w.U32(static_cast<uint32_t>(s.from.cell));
    w.F32(s.from.sx);
    w.F32(s.from.sy);
    w.U32(static_cast<uint32_t>(s.move));
    w.U32(static_cast<uint32_t>(s.to.cell));
    w.F32(s.to.sx);
    w.F32(s.to.sy);
  }
  w.F64(payload.stats.extrinsic_sum);
  w.F64(payload.stats.intrinsic_sum);
  w.F64(payload.stats.kappa);
  w.F64(payload.stats.xi);
  w.F64(payload.stats.rho);
  w.I64(payload.stats.env_steps);
  return w.Take();
}

Result<RolloutPayload> UnpackRollout(const std::string& payload) {
  ByteReader r(payload.data(), payload.size());
  RolloutPayload out;
  uint64_t num_buffers = 0;
  if (!r.U32(&out.rank) || !r.U64(&out.iteration) || !r.U64(&num_buffers)) {
    return Truncated("rollout header");
  }
  if (num_buffers > r.remaining()) {
    return Truncated("rollout (implausible buffer count)");
  }
  out.buffers.reserve(num_buffers);
  for (uint64_t i = 0; i < num_buffers; ++i) {
    CEWS_ASSIGN_OR_RETURN(agents::RolloutBuffer buffer, UnpackBuffer(r));
    out.buffers.push_back(std::move(buffer));
  }
  uint64_t num_samples = 0;
  if (!r.U64(&num_samples)) return Truncated("sample count");
  if (num_samples > r.remaining()) {
    return Truncated("rollout (implausible sample count)");
  }
  out.samples.reserve(num_samples);
  for (uint64_t i = 0; i < num_samples; ++i) {
    agents::CuriositySample s;
    uint32_t worker = 0, from_cell = 0, move = 0, to_cell = 0;
    if (!r.U32(&worker) || !r.U32(&from_cell) || !r.F32(&s.from.sx) ||
        !r.F32(&s.from.sy) || !r.U32(&move) || !r.U32(&to_cell) ||
        !r.F32(&s.to.sx) || !r.F32(&s.to.sy)) {
      return Truncated("curiosity sample");
    }
    s.worker = static_cast<int>(worker);
    s.from.cell = static_cast<int>(from_cell);
    s.move = static_cast<int>(move);
    s.to.cell = static_cast<int>(to_cell);
    out.samples.push_back(s);
  }
  if (!r.F64(&out.stats.extrinsic_sum) || !r.F64(&out.stats.intrinsic_sum) ||
      !r.F64(&out.stats.kappa) || !r.F64(&out.stats.xi) ||
      !r.F64(&out.stats.rho) || !r.I64(&out.stats.env_steps)) {
    return Truncated("rollout stats");
  }
  if (r.remaining() != 0) {
    return Status::IOError(
        "dist payload corrupt: trailing bytes in rollout");
  }
  return out;
}

uint64_t ConfigHash(const agents::TrainerConfig& config,
                    const env::Map& map) {
  Fingerprint fp;
  // Trainer shape.
  fp.Value(config.num_employees);
  fp.Value(config.episodes);
  fp.Value(config.batch_size);
  fp.Value(config.update_epochs);
  fp.Value(config.envs_per_employee);
  fp.Value(config.seed);
  fp.Value(static_cast<int>(config.intrinsic));
  fp.Value(config.add_intrinsic_to_reward);
  fp.Value(config.reward_scale);
  fp.Value(config.normalize_rewards);
  fp.Value(static_cast<int>(config.reward_mode));
  // Net + PPO + intrinsic hyperparameters (plain-data structs of scalars).
  fp.Value(config.net.in_channels);
  fp.Value(config.net.grid);
  fp.Value(config.net.num_workers);
  fp.Value(config.net.num_moves);
  fp.Value(config.net.conv1_channels);
  fp.Value(config.net.conv2_channels);
  fp.Value(config.net.conv3_channels);
  fp.Value(config.net.feature_dim);
  // Structs with padding (mixed field widths, trailing bools) are folded
  // field-by-field — hashing raw struct bytes would read indeterminate
  // padding.
  fp.Value(config.ppo.gamma);
  fp.Value(config.ppo.gae_lambda);
  fp.Value(config.ppo.clip_eps);
  fp.Value(config.ppo.value_coef);
  fp.Value(config.ppo.entropy_coef);
  fp.Value(config.ppo.lr);
  fp.Value(config.ppo.max_grad_norm);
  fp.Value(config.ppo.normalize_advantages);
  fp.Value(static_cast<int>(config.curiosity.feature));
  fp.Value(static_cast<int>(config.curiosity.structure));
  fp.Value(config.curiosity.eta);
  fp.Value(config.curiosity.embed_dim);
  fp.Value(config.curiosity.hidden);
  fp.Value(config.curiosity.lr);
  fp.Value(config.rnd.state_size);
  fp.Value(config.rnd.hidden);
  fp.Value(config.rnd.out_dim);
  fp.Value(config.rnd.eta);
  fp.Value(config.rnd.lr);
  // Environment scalars (the per-worker override vectors too).
  fp.Value(config.env.horizon);
  fp.Value(config.env.sensing_range);
  fp.Value(config.env.collection_rate);
  fp.Value(config.env.alpha);
  fp.Value(config.env.beta);
  fp.Value(config.env.initial_energy);
  fp.Value(config.env.energy_capacity);
  fp.Value(config.env.charge_range);
  fp.Value(config.env.charge_rate);
  fp.Value(config.env.obstacle_penalty);
  fp.Value(config.env.epsilon1);
  fp.Value(config.env.epsilon2);
  fp.Raw(config.env.per_worker_sensing_range.data(),
         config.env.per_worker_sensing_range.size() * sizeof(double));
  fp.Raw(config.env.per_worker_initial_energy.data(),
         config.env.per_worker_initial_energy.size() * sizeof(double));
  fp.Raw(config.env.action_space.step_lengths().data(),
         config.env.action_space.step_lengths().size() * sizeof(double));
  fp.Value(config.encoder.grid);
  // Full map geometry: every PoI, obstacle, station and spawn. MapConfig
  // field-by-field (padding again); Position/Rect are all-double PODs.
  fp.Value(map.config.size_x);
  fp.Value(map.config.size_y);
  fp.Value(map.config.num_pois);
  fp.Value(map.config.num_stations);
  fp.Value(map.config.num_workers);
  fp.Value(map.config.num_clusters);
  fp.Value(map.config.cluster_sigma);
  fp.Value(map.config.uniform_fraction);
  fp.Value(map.config.corner_fraction);
  fp.Value(map.config.num_obstacles);
  fp.Value(map.config.obstacle_min_size);
  fp.Value(map.config.obstacle_max_size);
  fp.Value(map.config.hard_corner);
  fp.Value(map.config.corner_size);
  fp.Value(map.config.corner_wall);
  fp.Value(map.config.corner_gap);
  for (const env::Poi& poi : map.pois) {
    fp.Value(poi.pos);
    fp.Value(poi.initial_value);
  }
  for (const env::Rect& rect : map.obstacles) fp.Value(rect);
  for (const env::ChargingStation& st : map.stations) fp.Value(st.pos);
  for (const env::Position& spawn : map.worker_spawns) fp.Value(spawn);
  return fp.Hash();
}

}  // namespace cews::dist
