// cews::dist — the gated train→deploy publish loop (DESIGN.md §7).
//
// Every `publish_every` iterations the chief's candidate policy is
// evaluated (EvaluatePolicyVec, its own rng — the learner's random stream
// is never touched, so enabling/disabling publishing cannot change training
// results), scored by mean kappa, and compared against the LAST PUBLISHED
// score: a candidate that regressed by more than `min_delta` is rejected
// and the fleet keeps serving the previous snapshot. An accepted candidate
// is crash-safe-saved (nn::SaveParameters tmp+rename) and published into
// the live serve::Fleet from that file with require_crc set — the serving
// path only ever loads what the integrity check passed.
#ifndef CEWS_DIST_DEPLOY_LOOP_H_
#define CEWS_DIST_DEPLOY_LOOP_H_

#include <memory>
#include <string>

#include "agents/chief_employee.h"
#include "agents/policy_net.h"
#include "common/rng.h"
#include "common/status.h"
#include "env/map.h"
#include "env/state_encoder.h"
#include "env/vec_env.h"
#include "serve/fleet.h"

namespace cews::dist {

struct DeployOptions {
  /// Gate cadence: evaluate + maybe publish after iterations
  /// publish_every-1, 2*publish_every-1, ... (i.e. every K-th). >= 1.
  int publish_every = 5;
  /// Scenario the snapshot publishes into.
  std::string scenario = serve::ScenarioRegistry::kDefaultScenario;
  /// Checkpoint file the accepted candidates are saved to (rewritten in
  /// place, crash-safe, each acceptance).
  std::string snapshot_path = "cews_deploy_snapshot.bin";
  /// Evaluation episodes per gate (vectorized instances).
  int eval_envs = 2;
  /// Seed of the gate's private eval rng.
  uint64_t eval_seed = 12345;
  /// Greedy (argmax) actions during eval — lower-variance gate scores.
  bool deterministic_eval = true;
  /// Tolerated regression vs the last published score: accept iff
  /// score >= published_score - min_delta. 0 = monotone non-decreasing.
  double min_delta = 0.0;
  /// Int8 fleets only: minimum fp32-vs-int8 action-agreement rate
  /// (agents::ActionAgreementOnStates over a short deterministic probe
  /// rollout) a candidate must clear in ADDITION to the score gate. A
  /// candidate whose quantization flips more than 1 - agreement_min of the
  /// argmax decisions is rejected — the fleet keeps serving the previous
  /// snapshot. Ignored by fp32 fleets.
  double agreement_min = 0.99;
};

/// The eval gate + publisher. Not thread-safe; driven from the chief's
/// training loop (ChiefServer::Run calls MaybePublish each iteration).
class DeployLoop {
 public:
  /// `config` must already be normalized (dist::NormalizeConfig); the eval
  /// environments replicate its env/encoder setup on `map`. `fleet` is the
  /// live serving fleet published into; must be non-null and outlive this.
  DeployLoop(const DeployOptions& options,
             const agents::TrainerConfig& config, const env::Map& map,
             serve::Fleet* fleet);

  /// Called after every training iteration with the current global net.
  /// Off-cadence iterations return OK immediately. On-cadence: evaluate,
  /// gate, and on acceptance save + publish. A rejected candidate is OK
  /// (the gate worked); save/publish failures are errors.
  Status MaybePublish(int iteration, const agents::PolicyNet& net);

  int accepted() const { return accepted_; }
  int rejected() const { return rejected_; }
  /// Mean kappa of the last published snapshot (meaningful once
  /// accepted() > 0).
  double published_score() const { return published_score_; }

 private:
  DeployOptions options_;
  env::StateEncoder encoder_;
  std::unique_ptr<env::VecEnv> eval_vec_;
  Rng eval_rng_;
  serve::Fleet* fleet_;
  double published_score_ = 0.0;
  bool has_published_ = false;
  int accepted_ = 0;
  int rejected_ = 0;
};

}  // namespace cews::dist

#endif  // CEWS_DIST_DEPLOY_LOOP_H_
