// cews::dist — stream transport under the frame protocol: a Listener that
// accepts connections and a Channel that sends/receives whole frames.
//
// Addresses:
//   "unix:<path>"       Unix-domain stream socket (the default for
//                       single-host chief/employee and fork mode).
//   "tcp:<ip>:<port>"   TCP over a numeric IPv4 address (no DNS — resolver
//                       behavior is environment-dependent and this layer
//                       must stay deterministic and dependency-free).
//                       Port 0 binds an ephemeral port; Listener::address()
//                       reports the resolved one.
//
// Liveness: Recv() takes a *silence* timeout — the clock resets whenever
// any bytes arrive, so a peer that keeps transmitting (even just heartbeat
// frames) is never declared dead mid-payload, while a silent peer trips
// DeadlineExceeded after exactly one quiet window. RecvSkippingHeartbeats
// layers the protocol rule on top: heartbeats refresh liveness and are
// otherwise invisible to callers.
#ifndef CEWS_DIST_CHANNEL_H_
#define CEWS_DIST_CHANNEL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "dist/frame.h"

namespace cews::dist {

/// Connect-retry policy of Channel::Dial. The employee usually starts
/// before the chief has bound its socket, so dialing retries with
/// exponential backoff until `timeout_ms` of wall time has elapsed.
struct DialOptions {
  int timeout_ms = 10000;
  int initial_backoff_ms = 10;
  int max_backoff_ms = 500;
};

/// One connected stream endpoint. Move-only; owns the fd.
class Channel {
 public:
  /// Connects to `address`, retrying per `options` while the listener does
  /// not exist yet (connection refused / socket file absent). DeadlineExceeded
  /// once the deadline passes.
  static Result<Channel> Dial(const std::string& address,
                              const DialOptions& options = DialOptions{});

  Channel() = default;
  Channel(Channel&& other) noexcept;
  Channel& operator=(Channel&& other) noexcept;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  ~Channel();

  bool connected() const { return fd_ >= 0; }

  /// Encodes and writes one whole frame (handles partial writes and EINTR;
  /// SIGPIPE is suppressed). IOError on a broken connection.
  Status Send(FrameType type, std::string_view payload);

  /// Shorthand liveness marker.
  Status SendHeartbeat() { return Send(FrameType::kHeartbeat, {}); }

  /// The next frame, waiting at most `silence_timeout_ms` between arriving
  /// byte chunks (<= 0 means wait forever). DeadlineExceeded when the peer
  /// goes silent for a full window; IOError on close/corruption.
  Result<Frame> Recv(int silence_timeout_ms);

  /// Transport byte totals of this channel (frames as written, header and
  /// CRC included) — what the chief aggregates into DistTrainResult.
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

  void Close();

 private:
  explicit Channel(int fd) : fd_(fd) {}
  friend class Listener;

  int fd_ = -1;
  FrameReader reader_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

/// A bound, listening socket. Move-only; unlinks its unix path on close.
class Listener {
 public:
  static Result<Listener> Bind(const std::string& address);

  Listener() = default;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Accepts one connection, waiting at most `timeout_ms` (<= 0 forever).
  Result<Channel> Accept(int timeout_ms);

  /// Canonical address, with tcp port 0 resolved to the bound port.
  const std::string& address() const { return address_; }

  void Close();

 private:
  int fd_ = -1;
  std::string address_;
  std::string unix_path_;  ///< Non-empty for unix sockets; unlinked on close.
};

/// The next non-heartbeat frame: heartbeats refresh the silence clock and
/// are dropped. Same errors as Channel::Recv.
Result<Frame> RecvSkippingHeartbeats(Channel& channel,
                                     int silence_timeout_ms);

/// RecvSkippingHeartbeats + type check: IOError naming both types when the
/// peer sent something other than `want`.
Result<Frame> ExpectFrame(Channel& channel, FrameType want,
                          int silence_timeout_ms);

}  // namespace cews::dist

#endif  // CEWS_DIST_CHANNEL_H_
