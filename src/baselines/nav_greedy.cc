#include "baselines/nav_greedy.h"

#include <limits>

namespace cews::baselines {

NavGreedyPlanner::NavGreedyPlanner(const env::Map& map,
                                   const GreedyConfig& config)
    : config_(config), path_planner_(map) {}

int NavGreedyPlanner::MoveToward(const env::Env& env, int worker,
                                 const env::Position& target) const {
  const env::Position from =
      env.workers()[static_cast<size_t>(worker)].pos;
  const env::Position waypoint = path_planner_.NextWaypoint(from, target);
  const int num_moves = env.config().action_space.num_moves();
  double best_d = std::numeric_limits<double>::max();
  int best_move = 0;
  for (int m = 0; m < num_moves; ++m) {
    if (!env.MoveValid(worker, m)) continue;
    const double d = env::Distance(env.MoveTarget(worker, m), waypoint);
    if (d < best_d) {
      best_d = d;
      best_move = m;
    }
  }
  return best_move;
}

std::vector<env::WorkerAction> NavGreedyPlanner::Plan(
    const env::Env& env) const {
  const int num_moves = env.config().action_space.num_moves();
  std::vector<env::WorkerAction> actions;
  actions.reserve(static_cast<size_t>(env.num_workers()));
  for (int w = 0; w < env.num_workers(); ++w) {
    const env::WorkerState& ws = env.workers()[static_cast<size_t>(w)];
    env::WorkerAction action;

    const bool low_energy =
        ws.energy < config_.charge_threshold * env.InitialEnergy(w);
    if (low_energy) {
      if (env.CanChargeAt(ws.pos) &&
          ws.energy < env.config().energy_capacity) {
        action.charge = true;
        actions.push_back(action);
        continue;
      }
      const int station = env.NearestStation(ws.pos);
      if (station >= 0) {
        action.move = MoveToward(
            env, w, env.map().stations[static_cast<size_t>(station)].pos);
        actions.push_back(action);
        continue;
      }
    }

    // Immediate collection if anything is in reach.
    double best_q = 0.0;
    int best_move = -1;
    for (int m = 0; m < num_moves; ++m) {
      if (!env.MoveValid(w, m)) continue;
      const double q =
          env.PotentialCollection(env.MoveTarget(w, m), env.SensingRange(w));
      if (q > best_q + 1e-12) {
        best_q = q;
        best_move = m;
      }
    }
    if (best_move >= 0) {
      action.move = best_move;
      actions.push_back(action);
      continue;
    }

    // Nothing in reach: navigate toward the nearest PoI with remaining
    // data (this is what plain Greedy cannot do around obstacles).
    double best_d = std::numeric_limits<double>::max();
    int best_poi = -1;
    for (int p = 0; p < env.num_pois(); ++p) {
      if (env.poi_values()[static_cast<size_t>(p)] <= 1e-9) continue;
      const double d = env::Distance(
          ws.pos, env.map().pois[static_cast<size_t>(p)].pos);
      if (d < best_d) {
        best_d = d;
        best_poi = p;
      }
    }
    if (best_poi >= 0) {
      action.move = MoveToward(
          env, w, env.map().pois[static_cast<size_t>(best_poi)].pos);
    }
    actions.push_back(action);
  }
  return actions;
}

}  // namespace cews::baselines
