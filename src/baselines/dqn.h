// DQN baseline (extension beyond the paper): a value-based alternative to
// the policy-gradient methods, included because Section IV argues policy
// gradients converge better in this domain — this implementation lets that
// claim be measured. Multi-agent like Edics: one Q-network per worker, each
// trained off-policy from a replay buffer with a target network, epsilon-
// greedy exploration, and the Huber TD loss.
#ifndef CEWS_BASELINES_DQN_H_
#define CEWS_BASELINES_DQN_H_

#include <memory>
#include <vector>

#include "agents/chief_employee.h"  // EpisodeRecord
#include "agents/cnn_trunk.h"
#include "agents/eval.h"
#include "env/env.h"
#include "env/state_encoder.h"

namespace cews::baselines {

/// Q-network: shared CNN trunk + linear head over the joint
/// (move, charge) action set of one worker.
class QNetwork : public nn::Module {
 public:
  QNetwork(const agents::CnnTrunkConfig& trunk_config, int num_actions,
           cews::Rng& rng);

  /// x: [N, C, G, G] -> Q values [N, num_actions].
  nn::Tensor Forward(const nn::Tensor& x) const;

  std::vector<nn::Tensor> Parameters() const override;

  int num_actions() const { return num_actions_; }

 private:
  std::unique_ptr<agents::CnnTrunk> trunk_;
  std::unique_ptr<nn::Linear> head_;
  int num_actions_;
};

/// DQN training configuration.
struct DqnConfig {
  int episodes = 200;
  /// Replay buffer capacity (transitions per worker).
  int replay_capacity = 20000;
  /// Minibatch size per gradient step.
  int batch_size = 64;
  /// Gradient steps per episode.
  int updates_per_episode = 30;
  /// Copy online -> target network every this many gradient steps.
  int target_sync_every = 150;
  float lr = 1e-3f;
  float gamma = 0.95f;
  /// Linear epsilon-greedy schedule.
  float epsilon_start = 1.0f;
  float epsilon_end = 0.05f;
  int epsilon_decay_episodes = 150;
  /// Multiplies the stored reward (cf. TrainerConfig::reward_scale).
  float reward_scale = 0.1f;
  float huber_delta = 1.0f;
  float max_grad_norm = 5.0f;

  agents::CnnTrunkConfig trunk;
  env::EnvConfig env;
  env::StateEncoderConfig encoder;
  uint64_t seed = 1;
};

/// Multi-agent DQN over the crowdsensing environment.
class DqnTrainer {
 public:
  DqnTrainer(const DqnConfig& config, env::Map map);

  /// Runs training; returns per-episode diagnostics.
  std::vector<agents::EpisodeRecord> Train();

  /// Evaluates the greedy (argmax-Q) joint policy on a fresh episode.
  agents::EvalResult Evaluate(Rng& rng, float epsilon = 0.0f);

  int num_agents() const { return static_cast<int>(online_.size()); }

  /// Current exploration rate for the given episode index.
  float EpsilonAt(int episode) const;

 private:
  struct Replay {
    std::shared_ptr<std::vector<float>> state;
    std::shared_ptr<std::vector<float>> next_state;
    int action = 0;
    float reward = 0.0f;
    bool done = false;
  };

  /// Joint (move, charge) action index helpers.
  int ActionIndex(int move, bool charge) const;
  env::WorkerAction ActionOf(int index) const;

  /// Epsilon-greedy action for one worker.
  int SelectAction(int worker, const std::vector<float>& state, float epsilon,
                   Rng& rng) const;

  /// One TD gradient step for one worker's network.
  void UpdateStep(int worker, Rng& rng);

  DqnConfig config_;
  env::Map map_;
  env::StateEncoder encoder_;
  int num_moves_ = 0;
  std::vector<std::unique_ptr<QNetwork>> online_;
  std::vector<std::unique_ptr<QNetwork>> target_;
  std::vector<std::unique_ptr<nn::Adam>> optimizers_;
  std::vector<std::vector<Replay>> replay_;  // ring buffer per worker
  std::vector<size_t> replay_next_;
  int64_t gradient_steps_ = 0;
};

}  // namespace cews::baselines

#endif  // CEWS_BASELINES_DQN_H_
