// Interface for non-learning (planning) baselines and a shared episode
// runner.
#ifndef CEWS_BASELINES_PLANNER_H_
#define CEWS_BASELINES_PLANNER_H_

#include <vector>

#include "agents/eval.h"
#include "env/env.h"

namespace cews::baselines {

/// A stateless per-slot planner: observes the environment and emits one
/// action per worker.
class Planner {
 public:
  virtual ~Planner() = default;

  /// Decides actions for the current slot.
  virtual std::vector<env::WorkerAction> Plan(const env::Env& env) const = 0;
};

/// Resets env and runs one full episode under the planner.
agents::EvalResult RunPlannerEpisode(const Planner& planner, env::Env& env);

}  // namespace cews::baselines

#endif  // CEWS_BASELINES_PLANNER_H_
