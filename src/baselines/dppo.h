// The DPPO baseline (Heess et al. 2017; Section VII-B): the same distributed
// chief-employee PPO, trained on the dense reward (Eqn 20) with per-batch
// advantage normalization, 8 employees and batch size 250 — and no curiosity.
#ifndef CEWS_BASELINES_DPPO_H_
#define CEWS_BASELINES_DPPO_H_

#include "agents/chief_employee.h"

namespace cews::baselines {

/// Builds the DPPO trainer configuration on top of a base config: dense
/// reward, no intrinsic module, the paper's 8 employees / batch 250 (both
/// still overridable afterwards for scaled-down runs).
inline agents::TrainerConfig MakeDppoConfig(agents::TrainerConfig base) {
  base.reward_mode = agents::RewardMode::kDense;
  base.intrinsic = agents::IntrinsicMode::kNone;
  base.num_employees = 8;
  base.batch_size = 250;
  base.ppo.normalize_advantages = true;
  return base;
}

}  // namespace cews::baselines

#endif  // CEWS_BASELINES_DPPO_H_
