#include "baselines/planner.h"

namespace cews::baselines {

agents::EvalResult RunPlannerEpisode(const Planner& planner, env::Env& env) {
  env.Reset();
  agents::EvalResult result;
  int steps = 0;
  while (!env.Done()) {
    const env::StepResult step = env.Step(planner.Plan(env));
    result.mean_sparse_reward += step.sparse_reward;
    result.mean_dense_reward += step.dense_reward;
    ++steps;
  }
  if (steps > 0) {
    result.mean_sparse_reward /= steps;
    result.mean_dense_reward /= steps;
  }
  result.kappa = env.Kappa();
  result.xi = env.Xi();
  result.rho = env.Rho();
  return result;
}

}  // namespace cews::baselines
