#include "baselines/edics.h"

#include "common/check.h"

namespace cews::baselines {

EdicsTrainer::EdicsTrainer(const EdicsConfig& config, env::Map map)
    : config_(config), map_(std::move(map)), encoder_(config.encoder) {
  CEWS_CHECK_GT(config_.episodes, 0);
  config_.net.num_workers = 1;
  config_.net.grid = config_.encoder.grid;
  config_.net.num_moves = config_.env.action_space.num_moves();
  const int w_count = static_cast<int>(map_.worker_spawns.size());
  for (int w = 0; w < w_count; ++w) {
    agents_.push_back(std::make_unique<agents::PpoAgent>(
        config_.net, config_.ppo,
        config_.seed + static_cast<uint64_t>(w) * 131));
  }
}

double EdicsTrainer::WorkerDenseReward(const env::Env& env,
                                       const env::StepResult& step, int w) {
  const double q = step.collected[static_cast<size_t>(w)];
  const double e = step.energy_used[static_cast<size_t>(w)];
  const double data_term = e > 1e-9 ? q / e : 0.0;
  const double charge_term =
      step.charged[static_cast<size_t>(w)] / env.InitialEnergy(w);
  const double tau = step.collided[static_cast<size_t>(w)]
                         ? env.config().obstacle_penalty
                         : 0.0;
  return data_term + charge_term - tau;
}

std::vector<agents::EpisodeRecord> EdicsTrainer::Train() {
  env::Env env(config_.env, map_);
  Rng rng(config_.seed * 104729 + 1);
  const int w_count = env.num_workers();
  std::vector<agents::RolloutBuffer> buffers(static_cast<size_t>(w_count));
  std::vector<agents::EpisodeRecord> history;
  history.reserve(static_cast<size_t>(config_.episodes));

  for (int episode = 0; episode < config_.episodes; ++episode) {
    env.Reset();
    for (auto& b : buffers) b.Clear();
    double reward_sum = 0.0;

    std::vector<float> state = encoder_.Encode(env);
    while (!env.Done()) {
      std::vector<env::WorkerAction> joint;
      std::vector<agents::ActResult> acts;
      joint.reserve(static_cast<size_t>(w_count));
      acts.reserve(static_cast<size_t>(w_count));
      for (int w = 0; w < w_count; ++w) {
        acts.push_back(agents_[static_cast<size_t>(w)]->Act(state, rng));
        joint.push_back(acts.back().actions[0]);
      }
      const env::StepResult step = env.Step(joint);
      for (int w = 0; w < w_count; ++w) {
        agents::Transition t;
        t.state = state;
        t.moves = acts[static_cast<size_t>(w)].moves;
        t.charges = acts[static_cast<size_t>(w)].charges;
        t.log_prob = acts[static_cast<size_t>(w)].log_prob;
        t.value = acts[static_cast<size_t>(w)].value;
        t.reward = config_.reward_scale *
                   static_cast<float>(WorkerDenseReward(env, step, w));
        t.done = step.done;
        buffers[static_cast<size_t>(w)].Add(std::move(t));
      }
      reward_sum += step.dense_reward;
      state = encoder_.Encode(env);
    }

    for (int w = 0; w < w_count; ++w) {
      buffers[static_cast<size_t>(w)].ComputeAdvantages(
          config_.ppo.gamma, config_.ppo.gae_lambda, 0.0f);
      agents_[static_cast<size_t>(w)]->UpdateStandalone(
          buffers[static_cast<size_t>(w)], rng, config_.update_epochs,
          config_.minibatch);
    }

    agents::EpisodeRecord rec;
    rec.episode = episode;
    rec.kappa = env.Kappa();
    rec.xi = env.Xi();
    rec.rho = env.Rho();
    rec.extrinsic_reward = reward_sum / config_.env.horizon;
    history.push_back(rec);
  }
  return history;
}

agents::EvalResult EdicsTrainer::Evaluate(Rng& rng, bool deterministic) {
  env::Env env(config_.env, map_);
  env.Reset();
  agents::EvalResult result;
  int steps = 0;
  std::vector<float> state = encoder_.Encode(env);
  while (!env.Done()) {
    std::vector<env::WorkerAction> joint;
    for (int w = 0; w < num_agents(); ++w) {
      joint.push_back(
          agents_[static_cast<size_t>(w)]->Act(state, rng, deterministic)
              .actions[0]);
    }
    const env::StepResult step = env.Step(joint);
    result.mean_sparse_reward += step.sparse_reward;
    result.mean_dense_reward += step.dense_reward;
    ++steps;
    state = encoder_.Encode(env);
  }
  if (steps > 0) {
    result.mean_sparse_reward /= steps;
    result.mean_dense_reward /= steps;
  }
  result.kappa = env.Kappa();
  result.xi = env.Xi();
  result.rho = env.Rho();
  return result;
}

}  // namespace cews::baselines
