// Navigation-aware Greedy: the Greedy baseline upgraded with obstacle-aware
// A* routing to charging stations (and to the nearest remaining data when
// nothing is in immediate reach). An extension beyond the paper that
// quantifies how much of Greedy's failure (Section VII-I: "workers are
// easily trapped in a small region") is pure navigation myopia.
#ifndef CEWS_BASELINES_NAV_GREEDY_H_
#define CEWS_BASELINES_NAV_GREEDY_H_

#include "baselines/greedy.h"
#include "env/pathfinding.h"

namespace cews::baselines {

/// Greedy planner with A*-guided station seeking and data seeking.
class NavGreedyPlanner : public Planner {
 public:
  /// Builds the path planner for `map` once up front; the planner must only
  /// be used with environments running on the same map.
  explicit NavGreedyPlanner(const env::Map& map,
                            const GreedyConfig& config = {});

  std::vector<env::WorkerAction> Plan(const env::Env& env) const override;

 private:
  /// Best valid move bringing the worker toward `target` along the A* path.
  int MoveToward(const env::Env& env, int worker,
                 const env::Position& target) const;

  GreedyConfig config_;
  env::PathPlanner path_planner_;
};

}  // namespace cews::baselines

#endif  // CEWS_BASELINES_NAV_GREEDY_H_
