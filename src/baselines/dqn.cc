#include "baselines/dqn.h"

#include <algorithm>

#include "common/check.h"
#include "nn/ops.h"
#include "nn/params.h"

namespace cews::baselines {

QNetwork::QNetwork(const agents::CnnTrunkConfig& trunk_config,
                   int num_actions, cews::Rng& rng)
    : num_actions_(num_actions) {
  CEWS_CHECK_GT(num_actions, 1);
  trunk_ = std::make_unique<agents::CnnTrunk>(trunk_config, rng);
  head_ = std::make_unique<nn::Linear>(trunk_config.feature_dim, num_actions,
                                       rng, /*gain=*/0.01f);
}

nn::Tensor QNetwork::Forward(const nn::Tensor& x) const {
  return head_->Forward(trunk_->Forward(x));
}

std::vector<nn::Tensor> QNetwork::Parameters() const {
  std::vector<nn::Tensor> params = trunk_->Parameters();
  for (nn::Tensor t : head_->Parameters()) params.push_back(t);
  return params;
}

DqnTrainer::DqnTrainer(const DqnConfig& config, env::Map map)
    : config_(config), map_(std::move(map)), encoder_(config.encoder) {
  CEWS_CHECK_GT(config_.episodes, 0);
  CEWS_CHECK_GT(config_.replay_capacity, config_.batch_size);
  config_.trunk.grid = config_.encoder.grid;
  num_moves_ = config_.env.action_space.num_moves();
  const int num_actions = num_moves_ * 2;
  const int workers = static_cast<int>(map_.worker_spawns.size());
  Rng rng(config_.seed * 52711 + 3);
  for (int w = 0; w < workers; ++w) {
    online_.push_back(
        std::make_unique<QNetwork>(config_.trunk, num_actions, rng));
    target_.push_back(
        std::make_unique<QNetwork>(config_.trunk, num_actions, rng));
    nn::CopyParameters(online_.back()->Parameters(),
                       target_.back()->Parameters());
    optimizers_.push_back(
        std::make_unique<nn::Adam>(online_.back()->Parameters(), config_.lr));
  }
  replay_.resize(static_cast<size_t>(workers));
  replay_next_.assign(static_cast<size_t>(workers), 0);
}

float DqnTrainer::EpsilonAt(int episode) const {
  if (episode >= config_.epsilon_decay_episodes) return config_.epsilon_end;
  const float t = static_cast<float>(episode) /
                  static_cast<float>(config_.epsilon_decay_episodes);
  return config_.epsilon_start +
         t * (config_.epsilon_end - config_.epsilon_start);
}

int DqnTrainer::ActionIndex(int move, bool charge) const {
  return move * 2 + (charge ? 1 : 0);
}

env::WorkerAction DqnTrainer::ActionOf(int index) const {
  env::WorkerAction action;
  action.move = index / 2;
  action.charge = (index % 2) == 1;
  return action;
}

int DqnTrainer::SelectAction(int worker, const std::vector<float>& state,
                             float epsilon, Rng& rng) const {
  const int num_actions = online_[static_cast<size_t>(worker)]->num_actions();
  if (rng.Uniform() < epsilon) {
    return static_cast<int>(rng.UniformInt(static_cast<uint64_t>(num_actions)));
  }
  nn::NoGradGuard no_grad;
  const nn::Tensor x = nn::Tensor::FromData(
      {1, config_.trunk.in_channels, config_.trunk.grid, config_.trunk.grid},
      state);
  const nn::Tensor q = online_[static_cast<size_t>(worker)]->Forward(x);
  int best = 0;
  for (int a = 1; a < num_actions; ++a) {
    if (q.data()[a] > q.data()[best]) best = a;
  }
  return best;
}

void DqnTrainer::UpdateStep(int worker, Rng& rng) {
  const auto& buffer = replay_[static_cast<size_t>(worker)];
  if (static_cast<int>(buffer.size()) < config_.batch_size) return;
  const int b = config_.batch_size;
  const int state_size = encoder_.StateSize();
  std::vector<float> states(static_cast<size_t>(b * state_size));
  std::vector<float> next_states(static_cast<size_t>(b * state_size));
  std::vector<nn::Index> actions(static_cast<size_t>(b));
  std::vector<float> rewards(static_cast<size_t>(b));
  std::vector<float> not_done(static_cast<size_t>(b));
  for (int i = 0; i < b; ++i) {
    const Replay& r = buffer[static_cast<size_t>(rng.UniformInt(buffer.size()))];
    std::copy(r.state->begin(), r.state->end(),
              states.begin() + i * state_size);
    std::copy(r.next_state->begin(), r.next_state->end(),
              next_states.begin() + i * state_size);
    actions[static_cast<size_t>(i)] = r.action;
    rewards[static_cast<size_t>(i)] = r.reward;
    not_done[static_cast<size_t>(i)] = r.done ? 0.0f : 1.0f;
  }
  QNetwork& online = *online_[static_cast<size_t>(worker)];
  QNetwork& target = *target_[static_cast<size_t>(worker)];
  const nn::Shape batch_shape = {b, config_.trunk.in_channels,
                                 config_.trunk.grid, config_.trunk.grid};
  // TD targets from the frozen target network.
  std::vector<float> td(static_cast<size_t>(b));
  {
    nn::NoGradGuard no_grad;
    const nn::Tensor next_q = target.Forward(
        nn::Tensor::FromData(batch_shape, std::move(next_states)));
    const int num_actions = online.num_actions();
    for (int i = 0; i < b; ++i) {
      float best = next_q.data()[i * num_actions];
      for (int a = 1; a < num_actions; ++a) {
        best = std::max(best, next_q.data()[i * num_actions + a]);
      }
      td[static_cast<size_t>(i)] =
          rewards[static_cast<size_t>(i)] +
          config_.gamma * not_done[static_cast<size_t>(i)] * best;
    }
  }
  const std::vector<nn::Tensor> params = online.Parameters();
  nn::ZeroGradients(params);
  const nn::Tensor q_all =
      online.Forward(nn::Tensor::FromData(batch_shape, std::move(states)));
  const nn::Tensor q_taken = nn::GatherLastDim(q_all, actions);
  const nn::Tensor targets = nn::Tensor::FromData({b}, td);
  nn::Tensor loss = nn::HuberLoss(q_taken, targets, config_.huber_delta);
  loss.Backward();
  nn::ClipGradByGlobalNorm(params, config_.max_grad_norm);
  optimizers_[static_cast<size_t>(worker)]->Step();

  ++gradient_steps_;
  if (gradient_steps_ % config_.target_sync_every == 0) {
    for (size_t w = 0; w < online_.size(); ++w) {
      nn::CopyParameters(online_[w]->Parameters(), target_[w]->Parameters());
    }
  }
}

std::vector<agents::EpisodeRecord> DqnTrainer::Train() {
  env::Env env(config_.env, map_);
  Rng rng(config_.seed * 7907 + 11);
  const int workers = num_agents();
  std::vector<agents::EpisodeRecord> history;
  history.reserve(static_cast<size_t>(config_.episodes));

  for (int episode = 0; episode < config_.episodes; ++episode) {
    env.Reset();
    const float epsilon = EpsilonAt(episode);
    double reward_sum = 0.0;
    auto state = std::make_shared<std::vector<float>>(encoder_.Encode(env));
    while (!env.Done()) {
      std::vector<env::WorkerAction> joint;
      std::vector<int> taken(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        taken[static_cast<size_t>(w)] = SelectAction(w, *state, epsilon, rng);
        joint.push_back(ActionOf(taken[static_cast<size_t>(w)]));
      }
      const env::StepResult step = env.Step(joint);
      auto next_state =
          std::make_shared<std::vector<float>>(encoder_.Encode(env));
      for (int w = 0; w < workers; ++w) {
        const double q = step.collected[static_cast<size_t>(w)];
        const double e = step.energy_used[static_cast<size_t>(w)];
        const double data_term = e > 1e-9 ? q / e : 0.0;
        const double charge_term =
            step.charged[static_cast<size_t>(w)] / env.InitialEnergy(w);
        const double tau = step.collided[static_cast<size_t>(w)]
                               ? config_.env.obstacle_penalty
                               : 0.0;
        Replay r;
        r.state = state;
        r.next_state = next_state;
        r.action = taken[static_cast<size_t>(w)];
        r.reward = config_.reward_scale *
                   static_cast<float>(data_term + charge_term - tau);
        r.done = step.done;
        auto& buffer = replay_[static_cast<size_t>(w)];
        if (static_cast<int>(buffer.size()) < config_.replay_capacity) {
          buffer.push_back(std::move(r));
        } else {
          buffer[replay_next_[static_cast<size_t>(w)]] = std::move(r);
          replay_next_[static_cast<size_t>(w)] =
              (replay_next_[static_cast<size_t>(w)] + 1) %
              static_cast<size_t>(config_.replay_capacity);
        }
      }
      reward_sum += step.dense_reward;
      state = std::move(next_state);
    }
    for (int u = 0; u < config_.updates_per_episode; ++u) {
      for (int w = 0; w < workers; ++w) UpdateStep(w, rng);
    }
    agents::EpisodeRecord rec;
    rec.episode = episode;
    rec.kappa = env.Kappa();
    rec.xi = env.Xi();
    rec.rho = env.Rho();
    rec.extrinsic_reward = reward_sum / config_.env.horizon;
    history.push_back(rec);
  }
  return history;
}

agents::EvalResult DqnTrainer::Evaluate(Rng& rng, float epsilon) {
  env::Env env(config_.env, map_);
  env.Reset();
  agents::EvalResult result;
  int steps = 0;
  std::vector<float> state = encoder_.Encode(env);
  while (!env.Done()) {
    std::vector<env::WorkerAction> joint;
    for (int w = 0; w < num_agents(); ++w) {
      joint.push_back(ActionOf(SelectAction(w, state, epsilon, rng)));
    }
    const env::StepResult step = env.Step(joint);
    result.mean_sparse_reward += step.sparse_reward;
    result.mean_dense_reward += step.dense_reward;
    ++steps;
    state = encoder_.Encode(env);
  }
  if (steps > 0) {
    result.mean_sparse_reward /= steps;
    result.mean_dense_reward /= steps;
  }
  result.kappa = env.Kappa();
  result.xi = env.Xi();
  result.rho = env.Rho();
  return result;
}

}  // namespace cews::baselines
