// The Greedy baseline (Section VII-B): each slot, each worker moves to the
// reachable position maximizing the data it would collect immediately,
// charging only when its battery runs low and a station is at hand.
#ifndef CEWS_BASELINES_GREEDY_H_
#define CEWS_BASELINES_GREEDY_H_

#include "baselines/planner.h"

namespace cews::baselines {

/// Greedy tunables.
struct GreedyConfig {
  /// Charge/seek-station when energy falls below this fraction of b_0.
  double charge_threshold = 0.3;
};

/// One-step-lookahead greedy planner. When low on energy it heads straight
/// for the nearest station (no obstacle-aware pathfinding — exactly the
/// myopia the paper observes getting it "trapped in a small region").
class GreedyPlanner : public Planner {
 public:
  explicit GreedyPlanner(const GreedyConfig& config = {});

  std::vector<env::WorkerAction> Plan(const env::Env& env) const override;

 private:
  GreedyConfig config_;
};

}  // namespace cews::baselines

#endif  // CEWS_BASELINES_GREEDY_H_
