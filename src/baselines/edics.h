// The Edics baseline (Liu et al., JSAC'19; Section VII-B): multi-agent DRL
// where each worker is driven by its own independent PPO agent trained on
// the dense reward (Eqn 20), without the chief-employee architecture or
// curiosity.
#ifndef CEWS_BASELINES_EDICS_H_
#define CEWS_BASELINES_EDICS_H_

#include <memory>
#include <vector>

#include "agents/chief_employee.h"  // EpisodeRecord
#include "agents/eval.h"
#include "agents/ppo.h"
#include "env/env.h"
#include "env/state_encoder.h"

namespace cews::baselines {

/// Edics training configuration.
struct EdicsConfig {
  int episodes = 200;
  int update_epochs = 4;
  size_t minibatch = 64;
  /// Multiplies the stored training reward (see TrainerConfig::reward_scale).
  float reward_scale = 1.0f;
  agents::PpoConfig ppo;
  agents::PolicyNetConfig net;  // num_workers is forced to 1 per agent
  env::EnvConfig env;
  env::StateEncoderConfig encoder;
  uint64_t seed = 1;
};

/// Trains W independent single-worker PPO agents in a shared environment.
class EdicsTrainer {
 public:
  EdicsTrainer(const EdicsConfig& config, env::Map map);

  /// Runs training; returns per-episode diagnostics.
  std::vector<agents::EpisodeRecord> Train();

  /// Evaluates the joint policy of all trained agents on a fresh episode.
  agents::EvalResult Evaluate(Rng& rng, bool deterministic = false);

  int num_agents() const { return static_cast<int>(agents_.size()); }

 private:
  /// Per-worker dense reward: q/e + sigma/b0 - tau (the terms of Eqn 20
  /// before averaging).
  static double WorkerDenseReward(const env::Env& env,
                                  const env::StepResult& step, int w);

  EdicsConfig config_;
  env::Map map_;
  env::StateEncoder encoder_;
  std::vector<std::unique_ptr<agents::PpoAgent>> agents_;
};

}  // namespace cews::baselines

#endif  // CEWS_BASELINES_EDICS_H_
