#include "baselines/dnc.h"

#include <algorithm>
#include <limits>

namespace cews::baselines {

DncPlanner::DncPlanner(const DncConfig& config) : config_(config) {}

namespace {

/// Expected data collected sensing from `pos`, where PoIs sensed from
/// `prev` (when prev != nullptr) have already been depleted by one
/// collection round.
double ExpectedCollection(const env::Env& env, const env::Position& pos,
                          const env::Position* prev) {
  const double g = env.config().sensing_range;
  const double lambda = env.config().collection_rate;
  double q = 0.0;
  const auto& pois = env.map().pois;
  const auto& values = env.poi_values();
  for (size_t p = 0; p < pois.size(); ++p) {
    if (env::Distance(pos, pois[p].pos) > g) continue;
    double remaining = values[p];
    if (prev != nullptr && env::Distance(*prev, pois[p].pos) <= g) {
      remaining -= std::min(lambda * pois[p].initial_value, remaining);
    }
    q += std::min(lambda * pois[p].initial_value, remaining);
  }
  return q;
}

}  // namespace

std::vector<env::WorkerAction> DncPlanner::Plan(const env::Env& env) const {
  const int num_moves = env.config().action_space.num_moves();
  std::vector<env::WorkerAction> actions;
  actions.reserve(static_cast<size_t>(env.num_workers()));
  for (int w = 0; w < env.num_workers(); ++w) {
    const env::WorkerState& ws = env.workers()[static_cast<size_t>(w)];
    env::WorkerAction action;

    const bool low_energy =
        ws.energy < config_.charge_threshold * env.InitialEnergy(w);
    if (low_energy) {
      if (env.CanChargeAt(ws.pos) &&
          ws.energy < env.config().energy_capacity) {
        action.charge = true;
        actions.push_back(action);
        continue;
      }
      const int station = env.NearestStation(ws.pos);
      if (station >= 0) {
        const env::Position target =
            env.map().stations[static_cast<size_t>(station)].pos;
        double best_d = std::numeric_limits<double>::max();
        int best_move = 0;
        for (int m = 0; m < num_moves; ++m) {
          if (!env.MoveValid(w, m)) continue;
          const double d = env::Distance(env.MoveTarget(w, m), target);
          if (d < best_d) {
            best_d = d;
            best_move = m;
          }
        }
        action.move = best_move;
        actions.push_back(action);
        continue;
      }
    }

    // Two-step lookahead: pick m1 maximizing q(t+1) + best q(t+2).
    double best_total = -1.0;
    int best_move = 0;
    const env::ActionSpace& space = env.config().action_space;
    for (int m1 = 0; m1 < num_moves; ++m1) {
      if (!env.MoveValid(w, m1)) continue;
      const env::Position pos1 = env.MoveTarget(w, m1);
      const double q1 = ExpectedCollection(env, pos1, nullptr);
      double best_q2 = 0.0;
      for (int m2 = 0; m2 < num_moves; ++m2) {
        const env::Position d = space.Delta(m2);
        const env::Position pos2{pos1.x + d.x, pos1.y + d.y};
        if (m2 != 0 && !env.map().SegmentFree(pos1, pos2)) continue;
        best_q2 = std::max(best_q2, ExpectedCollection(env, pos2, &pos1));
      }
      const double total = q1 + best_q2;
      if (total > best_total + 1e-12) {
        best_total = total;
        best_move = m1;
      }
    }
    action.move = best_move;
    actions.push_back(action);
  }
  return actions;
}

}  // namespace cews::baselines
