#include "baselines/greedy.h"

#include <limits>

namespace cews::baselines {

GreedyPlanner::GreedyPlanner(const GreedyConfig& config) : config_(config) {}

std::vector<env::WorkerAction> GreedyPlanner::Plan(
    const env::Env& env) const {
  const int num_moves = env.config().action_space.num_moves();
  std::vector<env::WorkerAction> actions;
  actions.reserve(static_cast<size_t>(env.num_workers()));
  for (int w = 0; w < env.num_workers(); ++w) {
    const env::WorkerState& ws = env.workers()[static_cast<size_t>(w)];
    env::WorkerAction action;

    const bool low_energy =
        ws.energy < config_.charge_threshold * env.InitialEnergy(w);
    if (low_energy) {
      if (env.CanChargeAt(ws.pos) &&
          ws.energy < env.config().energy_capacity) {
        action.charge = true;
        actions.push_back(action);
        continue;
      }
      // Head toward the nearest station, ignoring obstacles beyond the
      // immediate validity check.
      const int station = env.NearestStation(ws.pos);
      if (station >= 0) {
        const env::Position target =
            env.map().stations[static_cast<size_t>(station)].pos;
        double best_d = std::numeric_limits<double>::max();
        int best_move = 0;
        for (int m = 0; m < num_moves; ++m) {
          if (!env.MoveValid(w, m)) continue;
          const double d = env::Distance(env.MoveTarget(w, m), target);
          if (d < best_d) {
            best_d = d;
            best_move = m;
          }
        }
        action.move = best_move;
        actions.push_back(action);
        continue;
      }
    }

    // Maximize immediate collection (ties keep the smallest move: staying
    // costs no travel energy).
    double best_q = -1.0;
    int best_move = 0;
    for (int m = 0; m < num_moves; ++m) {
      if (!env.MoveValid(w, m)) continue;
      const double q =
          env.PotentialCollection(env.MoveTarget(w, m), env.SensingRange(w));
      if (q > best_q + 1e-12) {
        best_q = q;
        best_move = m;
      }
    }
    action.move = best_move;
    actions.push_back(action);
  }
  return actions;
}

}  // namespace cews::baselines
