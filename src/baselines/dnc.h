// The D&C baseline (Lian et al., ICDE'17; Section VII-B): prediction-based
// task assignment that folds the next-step condition into the current
// decision — here, a two-step lookahead maximizing expected collected data
// over slots t+1 and t+2 with depletion accounted for.
#ifndef CEWS_BASELINES_DNC_H_
#define CEWS_BASELINES_DNC_H_

#include "baselines/planner.h"

namespace cews::baselines {

/// D&C tunables.
struct DncConfig {
  /// Charge/seek-station when energy falls below this fraction of b_0.
  double charge_threshold = 0.3;
};

/// Two-step-lookahead planner ("derive all the possible positions for
/// workers at time slot t+1 and t+2, and calculate the expected collected
/// data; choose the actions that maximize it for time t").
class DncPlanner : public Planner {
 public:
  explicit DncPlanner(const DncConfig& config = {});

  std::vector<env::WorkerAction> Plan(const env::Env& env) const override;

 private:
  DncConfig config_;
};

}  // namespace cews::baselines

#endif  // CEWS_BASELINES_DNC_H_
