// cews::obs — periodic metrics exporter: the machine-readable counterpart
// to StatsReporter's human heartbeat.
//
// A background thread ticks every period and, per tick:
//   1. evaluates the attached SloMonitor (if any), publishing slo.* gauges
//      and breach transitions,
//   2. aggregates every rolling histogram over the configured windows and
//      publishes windowed gauges ("<name>.<w>s.p99_us", ".p50_us",
//      ".p999_us", ".count") so windowed percentiles are visible to any
//      snapshot consumer,
//   3. appends one compact JSON object (counters, gauges, windowed
//      summaries, timestamp) as a line to the JSONL file — an append-only
//      time series greppable with jq,
//   4. rewrites the Prometheus text-exposition file (write-tmp-then-rename
//      so scrapers never see a torn file),
//   5. refreshes the flight recorder's embedded metrics snapshot, so a
//      crash dump carries metrics at most one period old.
//
// Every sink is optional; an exporter with no paths and no monitor still
// publishes windowed gauges and refreshes the flight recorder. Stop() (or
// destruction) runs one final export so short runs still leave complete
// files.
#ifndef CEWS_OBS_METRICS_EXPORTER_H_
#define CEWS_OBS_METRICS_EXPORTER_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace cews::obs {

struct MetricsExporterConfig {
  double period_seconds = 1.0;
  /// Append one JSON object per tick here; empty = no JSONL sink.
  std::string jsonl_path;
  /// Rewrite Prometheus text exposition here; empty = no Prometheus sink.
  std::string prom_path;
  /// Rolling-histogram windows to aggregate, in seconds.
  std::vector<int> windows = {10, 60};
  /// Evaluated once per tick. Borrowed; must outlive the exporter. The
  /// exporter is the only caller of Evaluate (SloMonitor is not
  /// thread-safe).
  SloMonitor* slo = nullptr;
  /// Refresh FlightRecorder::Global()'s embedded snapshot each tick.
  bool update_flight_recorder = true;
};

class MetricsExporter {
 public:
  /// Starts the exporter thread. period_seconds must be positive.
  explicit MetricsExporter(MetricsExporterConfig config);

  /// Stops after one final export (idempotent).
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  void Stop();

  /// One export pass (steps 1–5 above). Called by the thread each tick;
  /// public so tests drive it synchronously with injected times. Returns
  /// the first sink error, after attempting every sink.
  Status ExportOnce(uint64_t now_ns = 0);

  /// Prometheus text exposition of a snapshot: counters and gauges as
  /// "cews_<sanitized_name> <value>", histograms as _count/_sum/_p50_us/
  /// _p99_us. Exposed for tests.
  static std::string PrometheusText(const MetricsSnapshot& snap);

  /// The compact single-line JSON appended per JSONL tick. Exposed for
  /// tests.
  static std::string JsonlLine(const MetricsSnapshot& snap, uint64_t ts_ns);

 private:
  void Loop();

  const MetricsExporterConfig config_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace cews::obs

#endif  // CEWS_OBS_METRICS_EXPORTER_H_
