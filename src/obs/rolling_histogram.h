// cews::obs — rolling-window histograms: windowed latency percentiles
// without an external prober.
//
// A RollingHistogram is a fixed ring of time-bucketed exponential
// histograms: each ring slot owns one wall-clock second of samples
// (count, sum, and the same power-of-two buckets as obs::Histogram).
// Record() lands a sample in the slot for the current second, lazily
// re-zeroing the slot when the ring laps it; Window(w) aggregates the
// slots covering the last w seconds into an ordinary HistogramSnapshot,
// so windowed p50/p99/p999 come out of the same interpolating
// Percentile() the cumulative histograms use.
//
// Semantics: Window(w) covers the half-open interval
// (now - w seconds, now] *by slot second* — the current partial second is
// included (gauges from a fresh window reflect in-flight load immediately)
// and the oldest included slot may hold up to one extra second of age, so
// a window-w gauge reads samples between (w-1) and w+1 seconds old. Slots
// older than the ring capacity are recycled; windows wider than
// kMaxWindowSeconds are clamped.
//
// Thread safety: Record is a handful of relaxed fetch_adds (multi-writer,
// unlike the thread-local-sharded obs::Histogram — rolling histograms are
// per-shard, so contention is bounded by one shard's worker count).
// Slot rotation (once per second per slot) takes a mutex; readers never
// block writers. A snapshot racing writers may be short a few in-flight
// samples — windowed gauges are estimates by construction.
//
// Like Counter/Histogram, instances are created on first use via
// GetRollingHistogram(name) and live forever; creation past
// kMaxRollingHistograms CHECK-fails (see the headroom math below).
#ifndef CEWS_OBS_ROLLING_HISTOGRAM_H_
#define CEWS_OBS_ROLLING_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace cews::obs {

/// Ring capacity in one-second slots. Windows up to kMaxWindowSeconds are
/// exact; 64 slots cover the 10s/60s windows the SLO monitor evaluates
/// with two slots of rotation slack.
inline constexpr int kRollingSlots = 64;
inline constexpr int kMaxWindowSeconds = kRollingSlots - 2;

/// Creation cap. Headroom math (mirrors kMaxCounters/kMaxHistograms): a
/// full-size serving fleet mints one rolling histogram per shard
/// (serve.shard.N.latency, N < 64 by Fleet::Create) plus the fleet-wide
/// serve.fleet.latency and the standalone serve.latency; 80 leaves ~14
/// slots for future windowed sources.
inline constexpr int kMaxRollingHistograms = 80;

class RollingHistogram {
 public:
  explicit RollingHistogram(std::string name) : name_(std::move(name)) {}

  RollingHistogram(const RollingHistogram&) = delete;
  RollingHistogram& operator=(const RollingHistogram&) = delete;

  /// Records one sample (serve path: nanoseconds) into the slot owning the
  /// current second. `now_ns` = 0 reads the steady clock; tests inject
  /// explicit times to drive rotation deterministically.
  void Record(uint64_t value, uint64_t now_ns = 0);

  /// Aggregates the slots covering the last `window_seconds` (clamped to
  /// [1, kMaxWindowSeconds]) into a snapshot named
  /// "<name>[<window>s]". Percentiles interpolate like any
  /// HistogramSnapshot. `now_ns` = 0 reads the steady clock.
  HistogramSnapshot Window(int window_seconds, uint64_t now_ns = 0) const;

  const std::string& name() const { return name_; }

  /// Zeroes every slot. Test-only: must not race with writers.
  void ResetForTest();

 private:
  struct Slot {
    /// Wall-clock second this slot's samples belong to (-1 = never used).
    /// Written under rotate_mu_ with release; Record/Window check it with
    /// acquire, so a slot's samples are never attributed to a stale second.
    std::atomic<int64_t> second{-1};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
  };

  /// Re-zeroes `slot` for `second` (mutex-guarded; once per lap).
  void Rotate(Slot& slot, int64_t second);

  const std::string name_;
  mutable std::mutex rotate_mu_;
  std::array<Slot, kRollingSlots> slots_{};
};

/// Create-or-lookup by name against the process-wide set (same contract as
/// GetCounter: the pointer is valid forever).
RollingHistogram* GetRollingHistogram(const std::string& name);

/// Every registered rolling histogram, name-sorted (exporter scrape).
std::vector<RollingHistogram*> AllRollingHistograms();

}  // namespace cews::obs

#endif  // CEWS_OBS_ROLLING_HISTOGRAM_H_
