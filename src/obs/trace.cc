#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "common/env_flags.h"
#include "common/log.h"

namespace cews::obs {

namespace internal {

std::atomic<bool> g_trace_enabled{[] {
  return GetEnvBool("CEWS_OBS_TRACE");
}()};

}  // namespace internal

namespace {

/// One ring slot. Fields are relaxed atomics so a scrape racing a wrapped
/// writer reads torn-but-defined values instead of UB; the committed-count
/// release/acquire pair makes fully written slots visible.
struct SpanSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> start_ns{0};
  std::atomic<uint64_t> dur_ns{0};
  std::atomic<uint64_t> id{0};
  std::atomic<int64_t> arg{-1};
};

struct Ring {
  explicit Ring(size_t capacity, int tid)
      : slots(capacity), tid(tid) {}
  std::vector<SpanSlot> slots;
  const int tid;
  /// Monotonic count of spans ever written; slot = head % capacity.
  std::atomic<uint64_t> head{0};
};

struct TraceState {
  std::mutex mu;
  /// Rings live for the process so spans survive their threads.
  std::vector<std::unique_ptr<Ring>> rings;
};

TraceState* GlobalTrace() {
  static TraceState* state = new TraceState;  // leaked deliberately
  return state;
}

size_t RingCapacity() {
  static const size_t capacity = [] {
    const long v = GetEnvInt("CEWS_OBS_TRACE_CAPACITY", 1 << 16);
    return static_cast<size_t>(v > 0 ? v : 1 << 16);
  }();
  return capacity;
}

Ring& LocalRing() {
  thread_local Ring* ring = [] {
    TraceState* state = GlobalTrace();
    std::lock_guard<std::mutex> lock(state->mu);
    state->rings.push_back(std::make_unique<Ring>(
        RingCapacity(), cews::internal::LogThreadId()));
    return state->rings.back().get();
  }();
  return *ring;
}

}  // namespace

namespace internal {

void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns) {
  RecordSpanArgs(name, start_ns, end_ns, 0, -1);
}

void RecordSpanArgs(const char* name, uint64_t start_ns, uint64_t end_ns,
                    uint64_t id, int64_t arg) {
  Ring& ring = LocalRing();
  const uint64_t head = ring.head.load(std::memory_order_relaxed);
  SpanSlot& slot = ring.slots[head % ring.slots.size()];
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.dur_ns.store(end_ns - start_ns, std::memory_order_relaxed);
  slot.id.store(id, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  ring.head.store(head + 1, std::memory_order_release);
}

}  // namespace internal

void SetTraceEnabled(bool enabled) {
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::vector<CollectedSpan> CollectSpans() {
  TraceState* state = GlobalTrace();
  std::vector<CollectedSpan> spans;
  bool wrapped = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    for (const std::unique_ptr<Ring>& ring : state->rings) {
      const uint64_t head = ring->head.load(std::memory_order_acquire);
      const uint64_t capacity = ring->slots.size();
      if (head > capacity) wrapped = true;
      const uint64_t n = std::min(head, capacity);
      const uint64_t first = head - n;
      for (uint64_t i = first; i < head; ++i) {
        const SpanSlot& slot = ring->slots[i % capacity];
        CollectedSpan span;
        span.name = slot.name.load(std::memory_order_relaxed);
        span.tid = ring->tid;
        span.start_ns = slot.start_ns.load(std::memory_order_relaxed);
        span.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
        span.id = slot.id.load(std::memory_order_relaxed);
        span.arg = slot.arg.load(std::memory_order_relaxed);
        if (span.name != nullptr) spans.push_back(span);
      }
    }
  }
  if (wrapped) {
    CEWS_LOG(Warning) << "trace ring(s) wrapped; oldest spans were dropped "
                         "(raise CEWS_OBS_TRACE_CAPACITY)";
  }
  std::sort(spans.begin(), spans.end(),
            [](const CollectedSpan& a, const CollectedSpan& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.tid < b.tid;
            });
  return spans;
}

std::string SpansToChromeJson(const std::vector<CollectedSpan>& spans) {
  uint64_t epoch = UINT64_MAX;
  for (const CollectedSpan& span : spans) {
    epoch = std::min(epoch, span.start_ns);
  }
  if (spans.empty()) epoch = 0;
  std::string out = "{\"traceEvents\": [";
  char buf[256];
  for (size_t i = 0; i < spans.size(); ++i) {
    const CollectedSpan& span = spans[i];
    if (span.id != 0) {
      // Tagged span: emit the correlation id (and shard, when set) as
      // trace_event args so Perfetto can group one request's phases.
      std::snprintf(
          buf, sizeof(buf),
          "%s\n  {\"name\": \"%s\", \"cat\": \"cews\", \"ph\": \"X\", "
          "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d, "
          "\"args\": {\"request\": %llu, \"shard\": %lld}}",
          i == 0 ? "" : ",", span.name,
          static_cast<double>(span.start_ns - epoch) * 1e-3,
          static_cast<double>(span.dur_ns) * 1e-3, span.tid,
          static_cast<unsigned long long>(span.id),
          static_cast<long long>(span.arg));
    } else {
      std::snprintf(
          buf, sizeof(buf),
          "%s\n  {\"name\": \"%s\", \"cat\": \"cews\", \"ph\": \"X\", "
          "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d}",
          i == 0 ? "" : ",", span.name,
          static_cast<double>(span.start_ns - epoch) * 1e-3,
          static_cast<double>(span.dur_ns) * 1e-3, span.tid);
    }
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << SpansToChromeJson(CollectSpans());
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

void ClearTraceForTest() {
  TraceState* state = GlobalTrace();
  std::lock_guard<std::mutex> lock(state->mu);
  for (std::unique_ptr<Ring>& ring : state->rings) {
    ring->head.store(0, std::memory_order_release);
    for (SpanSlot& slot : ring->slots) {
      slot.name.store(nullptr, std::memory_order_relaxed);
    }
  }
}

}  // namespace cews::obs
