#include "obs/rolling_histogram.h"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>

#include "common/check.h"
#include "common/stopwatch.h"

namespace cews::obs {

namespace {

/// floor(log2(v)) clamped into the bucket range; 0 maps to bucket 0
/// (identical to the cumulative Histogram's bucketing, so windowed and
/// lifetime percentiles are directly comparable).
int BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  const int b = std::bit_width(v) - 1;
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

int64_t SecondOf(uint64_t now_ns) {
  return static_cast<int64_t>((now_ns == 0 ? Stopwatch::NowNs() : now_ns) /
                              1'000'000'000ULL);
}

}  // namespace

void RollingHistogram::Rotate(Slot& slot, int64_t second) {
  std::lock_guard<std::mutex> lock(rotate_mu_);
  // Double-check under the lock: another writer may have rotated this slot
  // to `second` already — re-zeroing would drop its samples.
  if (slot.second.load(std::memory_order_acquire) == second) return;
  slot.count.store(0, std::memory_order_relaxed);
  slot.sum.store(0, std::memory_order_relaxed);
  for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
  slot.second.store(second, std::memory_order_release);
}

void RollingHistogram::Record(uint64_t value, uint64_t now_ns) {
  const int64_t second = SecondOf(now_ns);
  Slot& slot = slots_[static_cast<size_t>(
      second % static_cast<int64_t>(kRollingSlots))];
  if (slot.second.load(std::memory_order_acquire) != second) {
    Rotate(slot, second);
  }
  // A writer delayed a full ring lap (kRollingSlots seconds) between the
  // epoch check and these adds could misattribute one sample to a later
  // second — accepted: windowed gauges are estimates, and the lap time is
  // far beyond any scheduler stall worth designing for.
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(value, std::memory_order_relaxed);
  slot.buckets[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
}

HistogramSnapshot RollingHistogram::Window(int window_seconds,
                                           uint64_t now_ns) const {
  const int window = std::clamp(window_seconds, 1, kMaxWindowSeconds);
  const int64_t now_second = SecondOf(now_ns);
  HistogramSnapshot snap;
  snap.name = name_ + "[" + std::to_string(window) + "s]";
  for (const Slot& slot : slots_) {
    const int64_t second = slot.second.load(std::memory_order_acquire);
    if (second < 0 || second > now_second ||
        second <= now_second - window) {
      continue;
    }
    snap.count += slot.count.load(std::memory_order_relaxed);
    snap.sum += slot.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < kHistogramBuckets; ++b) {
      snap.buckets[static_cast<size_t>(b)] +=
          slot.buckets[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void RollingHistogram::ResetForTest() {
  std::lock_guard<std::mutex> lock(rotate_mu_);
  for (Slot& slot : slots_) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.sum.store(0, std::memory_order_relaxed);
    for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
    slot.second.store(-1, std::memory_order_release);
  }
}

namespace {

/// Process-wide named set, leaked like the metrics registry so pointers
/// survive static teardown.
struct RollingState {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<RollingHistogram>> histograms;
};

RollingState* GlobalRolling() {
  static RollingState* state = new RollingState;
  return state;
}

}  // namespace

RollingHistogram* GetRollingHistogram(const std::string& name) {
  RollingState* state = GlobalRolling();
  std::lock_guard<std::mutex> lock(state->mu);
  auto it = state->histograms.find(name);
  if (it != state->histograms.end()) return it->second.get();
  CEWS_CHECK_LT(static_cast<int>(state->histograms.size()),
                kMaxRollingHistograms)
      << "too many rolling histograms; raise kMaxRollingHistograms";
  return state->histograms
      .emplace(name, std::make_unique<RollingHistogram>(name))
      .first->second.get();
}

std::vector<RollingHistogram*> AllRollingHistograms() {
  RollingState* state = GlobalRolling();
  std::lock_guard<std::mutex> lock(state->mu);
  std::vector<RollingHistogram*> all;
  all.reserve(state->histograms.size());
  for (const auto& [name, hist] : state->histograms) {
    all.push_back(hist.get());  // std::map iterates name-sorted
  }
  return all;
}

}  // namespace cews::obs
