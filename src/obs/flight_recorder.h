// cews::obs — crash flight recorder: a bounded lock-free ring of recent
// structured events (model publishes, epoch swaps, request sheds, SLO
// transitions, server lifecycle) that can be dumped to a post-mortem file
// from a fatal-signal handler.
//
// Why not just logs: when a serving process dies under load, the question
// is "what was it doing in the last few seconds" — the recorder keeps the
// newest kFlightRingSlots events in memory at a cost of a few relaxed
// atomic stores per event, and the dump path is async-signal-safe (no
// malloc, no stdio, no locks: hand-rolled decimal formatting into a static
// buffer + one write(2)), so it works from inside SIGSEGV.
//
// Record() uses a per-slot seqlock: the writer claims a global ticket,
// marks the slot busy, stores the fields as relaxed atomics, then commits
// the ticket with a release store. Readers (Collect and the signal-time
// dump) skip busy or torn slots instead of blocking, so a reader never
// stalls the serving hot path and the signal handler never deadlocks on a
// lock held by the interrupted thread. Detail strings are stored as
// fixed-size arrays of atomic words — no pointers to free()-able memory,
// and data-race-free under TSan — and are sanitized at Record() time
// (quotes, backslashes, control bytes replaced) so the dump can splice
// them into JSON verbatim.
//
// The dump embeds the most recent metrics snapshot JSON, refreshed
// periodically by the MetricsExporter into a double-buffered fixed
// arena — the signal handler only reads whichever buffer was last
// published, never snapshots (snapshotting allocates).
#ifndef CEWS_OBS_FLIGHT_RECORDER_H_
#define CEWS_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cews::obs {

/// Ring capacity. 1024 events at serve cadence (publishes, swaps, sampled
/// sheds, SLO transitions) is minutes of history; a shed storm is
/// power-of-two sampled at the call sites so it cannot evict the sparse
/// lifecycle events that explain it.
inline constexpr int kFlightRingSlots = 1024;

/// Detail payload: 6 words = 48 bytes, NUL-padded.
inline constexpr int kFlightDetailWords = 6;
inline constexpr int kFlightDetailBytes = kFlightDetailWords * 8;

enum class FlightEventKind : uint32_t {
  kNone = 0,      ///< empty slot (never recorded)
  kServerStart,   ///< a PolicyServer began serving (a = shard index)
  kServerStop,    ///< a PolicyServer stopped (a = shard index)
  kPublish,       ///< model params published (a = new epoch)
  kEpochSwap,     ///< a worker swapped its replica (a = shard, b = epoch)
  kShed,          ///< overload shed, sampled (a = shard, b = shed count)
  kSloBreach,     ///< an SLO target went from met to breached
  kSloRecover,    ///< an SLO target went from breached back to met
  kNote,          ///< free-form marker (tools, tests)
};

/// Stable lowercase token for a kind ("publish", "slo_breach", ...).
const char* FlightEventKindName(FlightEventKind kind);

/// One event as collected from the ring (ordered oldest to newest).
struct FlightEvent {
  uint64_t seq = 0;    ///< global ticket, 1-based, monotonic
  uint64_t ts_ns = 0;  ///< steady clock at Record()
  FlightEventKind kind = FlightEventKind::kNone;
  std::string detail;  ///< sanitized, at most kFlightDetailBytes chars
  int64_t a = 0;       ///< kind-specific scalars (see enum docs)
  int64_t b = 0;
};

class FlightRecorder {
 public:
  /// The process-wide recorder (leaked, never destroyed).
  static FlightRecorder& Global();

  /// Appends one event. Lock-free, wait-free against readers; safe from
  /// any thread. `detail` may be null; it is truncated to
  /// kFlightDetailBytes and sanitized for JSON embedding.
  void Record(FlightEventKind kind, const char* detail, int64_t a = 0,
              int64_t b = 0);

  /// Publishes a metrics-snapshot JSON for the signal-time dump to embed.
  /// A document too large for the arena (64 KiB) is replaced by "null"
  /// rather than truncated, so the dump stays parseable. Call from one
  /// thread at a time (the MetricsExporter tick); not async-signal-safe.
  void SetMetricsJson(const std::string& json);

  /// Clean-shutdown dump: writes the post-mortem JSON document to `path`
  /// using ordinary buffered IO. `reason` lands in the "reason" field.
  Status WriteDump(const std::string& path, const char* reason);

  /// Async-signal-safe dump of the same document to an open fd. Public so
  /// tests can exercise the signal-path formatter without raising.
  void DumpToFd(int fd, const char* reason);

  /// Surviving events, oldest first (busy/torn slots skipped).
  std::vector<FlightEvent> Collect() const;

  /// Zeroes the ring and the metrics arena. Test-only: must not race
  /// writers.
  void ClearForTest();

 private:
  FlightRecorder() = default;

  struct Slot {
    /// 0 = empty, kBusySeq = mid-write, else the committed ticket.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint32_t> kind{0};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
    std::array<std::atomic<uint64_t>, kFlightDetailWords> detail{};
  };

  static constexpr uint64_t kBusySeq = ~uint64_t{0};
  static constexpr int kMetricsArenaBytes = 64 * 1024;

  std::atomic<uint64_t> next_seq_{0};
  std::array<Slot, kFlightRingSlots> slots_{};

  /// Double-buffered metrics JSON: the exporter writes the inactive
  /// buffer then flips `metrics_active_` with release; the dump reads the
  /// active one with acquire. A dump racing *two* consecutive Set calls
  /// can read bytes mid-overwrite — tolerated: the process is dying and
  /// the events array (the load-bearing part) is unaffected.
  std::array<std::array<char, kMetricsArenaBytes>, 2> metrics_json_{};
  std::array<std::atomic<int>, 2> metrics_len_{};
  std::atomic<int> metrics_active_{-1};  ///< -1 = never published
};

/// Installs fatal-signal handlers (SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
/// SIGILL, SIGTERM, SIGINT) that dump Global() to
/// `<dir>/postmortem.<pid>.json` and then re-raise with the default
/// disposition. Idempotent; the first call wins the directory.
void InstallFlightRecorderSignalHandler(const std::string& dir);

}  // namespace cews::obs

#endif  // CEWS_OBS_FLIGHT_RECORDER_H_
