#include "obs/slo.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/table.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/rolling_histogram.h"

namespace cews::obs {

namespace {

/// The latency source: the fleet-wide rolling histogram when a fleet is
/// serving, the standalone one otherwise. Resolved per evaluation because
/// the histograms are minted lazily on first request.
RollingHistogram* FindLatencySource() {
  RollingHistogram* standalone = nullptr;
  for (RollingHistogram* hist : AllRollingHistograms()) {
    if (hist->name() == "serve.fleet.latency") return hist;
    if (hist->name() == "serve.latency") standalone = hist;
  }
  return standalone;
}

double PercentileFor(SloKind kind) {
  switch (kind) {
    case SloKind::kP50: return 0.50;
    case SloKind::kP99: return 0.99;
    case SloKind::kP999: return 0.999;
    case SloKind::kShedRatio: break;
  }
  return 0.0;
}

/// "slo.p99.10s" / "slo.shed" — the stable stem for per-target gauges.
std::string GaugeStem(const SloTarget& target) {
  std::string stem = "slo.";
  stem += SloKindName(target.kind);
  if (target.kind != SloKind::kShedRatio) {
    stem += '.';
    stem += std::to_string(target.window_seconds);
    stem += 's';
  }
  return stem;
}

}  // namespace

const char* SloKindName(SloKind kind) {
  switch (kind) {
    case SloKind::kP50: return "p50";
    case SloKind::kP99: return "p99";
    case SloKind::kP999: return "p999";
    case SloKind::kShedRatio: return "shed";
  }
  return "unknown";
}

std::string SloTarget::Describe() const {
  char buf[64];
  if (kind == SloKind::kShedRatio) {
    std::snprintf(buf, sizeof(buf), "shed<%.4g", threshold);
  } else {
    std::snprintf(buf, sizeof(buf), "%s<%.6gus@%ds", SloKindName(kind),
                  threshold, window_seconds);
  }
  return buf;
}

Result<std::vector<SloTarget>> ParseSloTargets(const std::string& spec) {
  std::vector<SloTarget> targets;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (clause.empty()) {
      if (spec.empty()) break;
      return Status::InvalidArgument("empty SLO clause in '" + spec + "'");
    }
    const size_t lt = clause.find('<');
    if (lt == std::string::npos) {
      return Status::InvalidArgument("SLO clause '" + clause +
                                     "' has no '<' (want e.g. p99<5000)");
    }
    const std::string kind_token = clause.substr(0, lt);
    SloTarget target;
    if (kind_token == "p50") {
      target.kind = SloKind::kP50;
    } else if (kind_token == "p99") {
      target.kind = SloKind::kP99;
    } else if (kind_token == "p999") {
      target.kind = SloKind::kP999;
    } else if (kind_token == "shed") {
      target.kind = SloKind::kShedRatio;
    } else {
      return Status::InvalidArgument(
          "unknown SLO kind '" + kind_token +
          "' (want p50, p99, p999, or shed)");
    }
    std::string value_token = clause.substr(lt + 1);
    const size_t at = value_token.find('@');
    if (at != std::string::npos) {
      if (target.kind == SloKind::kShedRatio) {
        return Status::InvalidArgument(
            "shed targets take no @window (clause '" + clause +
            "'): their window is the evaluation period");
      }
      const std::string window_token = value_token.substr(at + 1);
      char* end = nullptr;
      const long window = std::strtol(window_token.c_str(), &end, 10);
      if (end == window_token.c_str() || *end != '\0' || window < 1 ||
          window > kMaxWindowSeconds) {
        return Status::InvalidArgument(
            "bad SLO window '" + window_token + "' (want 1.." +
            std::to_string(kMaxWindowSeconds) + " seconds)");
      }
      target.window_seconds = static_cast<int>(window);
      value_token.resize(at);
    }
    char* end = nullptr;
    target.threshold = std::strtod(value_token.c_str(), &end);
    if (end == value_token.c_str() || *end != '\0' ||
        target.threshold <= 0.0) {
      return Status::InvalidArgument("bad SLO threshold '" + value_token +
                                     "' in clause '" + clause + "'");
    }
    if (target.kind == SloKind::kShedRatio && target.threshold > 1.0) {
      return Status::InvalidArgument(
          "shed threshold is a ratio in (0, 1], got '" + value_token + "'");
    }
    targets.push_back(target);
  }
  if (targets.empty()) {
    return Status::InvalidArgument("SLO spec '" + spec +
                                   "' contains no targets");
  }
  return targets;
}

SloMonitor::SloMonitor(std::vector<SloTarget> targets)
    : targets_(std::move(targets)), states_(targets_.size()) {}

std::vector<SloStatus> SloMonitor::Evaluate(uint64_t now_ns) {
  static Counter* const breaches = GetCounter("slo.breaches");
  std::vector<SloStatus> statuses;
  statuses.reserve(targets_.size());

  // Shed-ratio inputs are shared across targets: read the counters once.
  // serve.requests counts accepted submits; serve.fleet.shed_total counts
  // sheds from every shard (and standalone servers), so attempted =
  // accepted + shed.
  const MetricsSnapshot snap = SnapshotMetrics();
  const uint64_t shed = snap.CounterValue("serve.fleet.shed_total");
  const uint64_t accepted = snap.CounterValue("serve.requests");
  const uint64_t dshed = have_prev_counters_ ? shed - prev_shed_ : 0;
  const uint64_t daccepted =
      have_prev_counters_ ? accepted - prev_accepted_ : 0;
  const bool have_shed_window = have_prev_counters_ && dshed + daccepted > 0;
  const double shed_ratio =
      have_shed_window ? static_cast<double>(dshed) /
                             static_cast<double>(dshed + daccepted)
                       : 0.0;
  prev_shed_ = shed;
  prev_accepted_ = accepted;
  have_prev_counters_ = true;

  RollingHistogram* const latency = FindLatencySource();

  for (size_t i = 0; i < targets_.size(); ++i) {
    const SloTarget& target = targets_[i];
    TargetState& state = states_[i];
    SloStatus status;
    status.target = target;

    if (target.kind == SloKind::kShedRatio) {
      status.measured = have_shed_window;
      status.value = shed_ratio;
    } else if (latency != nullptr) {
      const HistogramSnapshot window =
          latency->Window(target.window_seconds, now_ns);
      if (window.count > 0) {
        status.measured = true;
        status.value =
            static_cast<double>(window.Percentile(PercentileFor(
                target.kind))) /
            1e3;  // latency histograms record nanoseconds; SLOs are in us
      }
    }
    status.breached = status.measured && status.value >= target.threshold;

    state.history_bits =
        (state.history_bits << 1 | (status.breached ? 1u : 0u)) &
        ((1u << kBurnWindowEvals) - 1);
    if (state.history_len < kBurnWindowEvals) ++state.history_len;
    status.burn_rate =
        static_cast<double>(std::popcount(state.history_bits)) /
        static_cast<double>(state.history_len);

    if (status.breached != state.last_breached) {
      // Transition, not level: a sustained breach is one event, so a bad
      // minute cannot flood the flight-recorder ring.
      const std::string desc = target.Describe();
      const double scale =
          target.kind == SloKind::kShedRatio ? 1e6 : 1.0;  // ppm vs us
      FlightRecorder::Global().Record(
          status.breached ? FlightEventKind::kSloBreach
                          : FlightEventKind::kSloRecover,
          desc.c_str(), static_cast<int64_t>(status.value * scale),
          static_cast<int64_t>(target.threshold * scale));
      if (status.breached) breaches->Increment();
      state.last_breached = status.breached;
    }

    const std::string stem = GaugeStem(target);
    GetGauge(stem + ".value")->Set(status.value);
    GetGauge(stem + ".burn")->Set(status.burn_rate);

    statuses.push_back(std::move(status));
  }
  return statuses;
}

std::string SloMonitor::FormatTable(
    const std::vector<SloStatus>& statuses) {
  Table table({"target", "value", "threshold", "burn", "status"});
  for (const SloStatus& status : statuses) {
    const bool ratio = status.target.kind == SloKind::kShedRatio;
    table.AddRow({status.target.Describe(),
                  status.measured
                      ? Table::Fmt(status.value, ratio ? 4 : 1)
                      : "-",
                  Table::Fmt(status.target.threshold, ratio ? 4 : 1),
                  Table::Fmt(status.burn_rate, 2),
                  !status.measured ? "NO DATA"
                  : status.breached ? "BREACH"
                                    : "OK"});
  }
  return table.ToString();
}

}  // namespace cews::obs
