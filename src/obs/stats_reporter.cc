#include "obs/stats_reporter.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/check.h"
#include "common/log.h"
#include "common/stopwatch.h"

namespace cews::obs {

namespace {

/// "8123.4" -> "8.1k" style for step rates; plain for small numbers.
std::string FmtRate(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v * 1e-6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

}  // namespace

StatsReporter::StatsReporter(double period_seconds)
    : period_seconds_(period_seconds) {
  CEWS_CHECK_GT(period_seconds_, 0.0);
  thread_ = std::thread([this]() { Loop(); });
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::string StatsReporter::FormatHeartbeat(const MetricsSnapshot& prev,
                                           const MetricsSnapshot& cur,
                                           double dt_seconds) {
  const double dt = dt_seconds > 0.0 ? dt_seconds : 1.0;
  std::string line = "heartbeat:";
  char buf[96];

  const uint64_t episodes =
      cur.CounterValue("train.episodes") - prev.CounterValue("train.episodes");
  std::snprintf(buf, sizeof(buf), " %s ep/s",
                FmtRate(static_cast<double>(episodes) / dt).c_str());
  line += buf;

  const uint64_t steps =
      cur.CounterValue("env.steps") - prev.CounterValue("env.steps");
  std::snprintf(buf, sizeof(buf), " | %s steps/s",
                FmtRate(static_cast<double>(steps) / dt).c_str());
  line += buf;

  if (cur.FindGauge("train.loss") != nullptr) {
    std::snprintf(buf, sizeof(buf), " | loss %.4g",
                  cur.GaugeValue("train.loss"));
    line += buf;
  }
  if (cur.FindGauge("train.kappa") != nullptr) {
    std::snprintf(buf, sizeof(buf), " | kappa %.3f xi %.3f rho %.3f",
                  cur.GaugeValue("train.kappa"), cur.GaugeValue("train.xi"),
                  cur.GaugeValue("train.rho"));
    line += buf;
  }

  // Serving fleet: request/shed rates plus the deepest shard queue, so a
  // heartbeat shows back-pressure building before sheds start. Gated on the
  // serve.requests counter existing — training-only runs keep the old line.
  if (cur.FindCounter("serve.requests") != nullptr) {
    const uint64_t requests =
        cur.CounterValue("serve.requests") - prev.CounterValue("serve.requests");
    const uint64_t sheds = cur.CounterValue("serve.fleet.shed_total") -
                           prev.CounterValue("serve.fleet.shed_total");
    double max_depth = 0.0;
    for (const GaugeSnapshot& g : cur.gauges) {
      // serve.queue_depth (standalone) or serve.shard.N.queue_depth.
      const std::string suffix = "queue_depth";
      if (g.name.size() >= suffix.size() && g.name.rfind("serve.", 0) == 0 &&
          g.name.compare(g.name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
        max_depth = std::max(max_depth, g.value);
      }
    }
    std::snprintf(buf, sizeof(buf), " | serve %s req/s %s shed/s qmax %d",
                  FmtRate(static_cast<double>(requests) / dt).c_str(),
                  FmtRate(static_cast<double>(sheds) / dt).c_str(),
                  static_cast<int>(max_depth));
    line += buf;
  }

  // Distributed trainer (dist/trainer.h): iteration and transport byte
  // rates plus the publish gate's accept/reject tally. Gated on the
  // dist.iterations counter existing — non-distributed runs keep the old
  // line.
  if (cur.FindCounter("dist.iterations") != nullptr) {
    const uint64_t iters = cur.CounterValue("dist.iterations") -
                           prev.CounterValue("dist.iterations");
    const uint64_t tx = cur.CounterValue("dist.bytes_tx") -
                        prev.CounterValue("dist.bytes_tx");
    const uint64_t rx = cur.CounterValue("dist.bytes_rx") -
                        prev.CounterValue("dist.bytes_rx");
    std::snprintf(buf, sizeof(buf),
                  " | dist %s it/s tx %sB/s rx %sB/s pub %llu/%llu",
                  FmtRate(static_cast<double>(iters) / dt).c_str(),
                  FmtRate(static_cast<double>(tx) / dt).c_str(),
                  FmtRate(static_cast<double>(rx) / dt).c_str(),
                  static_cast<unsigned long long>(
                      cur.CounterValue("dist.publish.accepted")),
                  static_cast<unsigned long long>(
                      cur.CounterValue("dist.publish.rejected")));
    line += buf;
  }

  // Expression-graph backend (CEWS_NN_GRAPH=1): replay rate, shape-cache
  // hit ratio and the largest planned activation arena. Gated on any
  // compiled-graph call having happened — tape-mode runs keep the old line.
  if (cur.CounterValue("nn.graph.calls") > 0) {
    const uint64_t replays =
        cur.CounterValue("nn.graph.calls") - prev.CounterValue("nn.graph.calls");
    const uint64_t hits = cur.CounterValue("nn.graph.cache_hits");
    const uint64_t misses = cur.CounterValue("nn.graph.cache_misses");
    const double hit_pct =
        hits + misses > 0
            ? 100.0 * static_cast<double>(hits) /
                  static_cast<double>(hits + misses)
            : 0.0;
    std::snprintf(buf, sizeof(buf),
                  " | graph %s replay/s hit %.0f%% arena %.1fMB",
                  FmtRate(static_cast<double>(replays) / dt).c_str(), hit_pct,
                  cur.GaugeValue("nn.graph.peak_arena_bytes") * 1e-6);
    line += buf;
  }

  // Pool utilization: lane-busy nanoseconds per wall-second per lane.
  const double pool_threads = cur.GaugeValue("threadpool.threads");
  if (pool_threads > 0.0) {
    const uint64_t busy = cur.CounterValue("threadpool.busy_ns") -
                          prev.CounterValue("threadpool.busy_ns");
    const double frac =
        static_cast<double>(busy) / (dt * 1e9 * pool_threads);
    std::snprintf(buf, sizeof(buf), " | pool %d thr %.0f%% busy",
                  static_cast<int>(pool_threads), frac * 100.0);
    line += buf;
  }
  return line;
}

void StatsReporter::Loop() {
  MetricsSnapshot prev = SnapshotMetrics();
  Stopwatch watch;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    const bool stopping = cv_.wait_for(
        lock, std::chrono::duration<double>(period_seconds_),
        [this]() { return stop_; });
    const double dt = watch.ElapsedSeconds();
    watch.Restart();
    MetricsSnapshot cur = SnapshotMetrics();
    CEWS_LOG(Info) << FormatHeartbeat(prev, cur, dt);
    prev = std::move(cur);
    if (stopping) return;
  }
}

}  // namespace cews::obs
