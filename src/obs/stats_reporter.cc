#include "obs/stats_reporter.h"

#include <chrono>
#include <cstdio>

#include "common/check.h"
#include "common/log.h"
#include "common/stopwatch.h"

namespace cews::obs {

namespace {

/// "8123.4" -> "8.1k" style for step rates; plain for small numbers.
std::string FmtRate(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v * 1e-6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

}  // namespace

StatsReporter::StatsReporter(double period_seconds)
    : period_seconds_(period_seconds) {
  CEWS_CHECK_GT(period_seconds_, 0.0);
  thread_ = std::thread([this]() { Loop(); });
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::string StatsReporter::FormatHeartbeat(const MetricsSnapshot& prev,
                                           const MetricsSnapshot& cur,
                                           double dt_seconds) {
  const double dt = dt_seconds > 0.0 ? dt_seconds : 1.0;
  std::string line = "heartbeat:";
  char buf[96];

  const uint64_t episodes =
      cur.CounterValue("train.episodes") - prev.CounterValue("train.episodes");
  std::snprintf(buf, sizeof(buf), " %s ep/s",
                FmtRate(static_cast<double>(episodes) / dt).c_str());
  line += buf;

  const uint64_t steps =
      cur.CounterValue("env.steps") - prev.CounterValue("env.steps");
  std::snprintf(buf, sizeof(buf), " | %s steps/s",
                FmtRate(static_cast<double>(steps) / dt).c_str());
  line += buf;

  if (cur.FindGauge("train.loss") != nullptr) {
    std::snprintf(buf, sizeof(buf), " | loss %.4g",
                  cur.GaugeValue("train.loss"));
    line += buf;
  }
  if (cur.FindGauge("train.kappa") != nullptr) {
    std::snprintf(buf, sizeof(buf), " | kappa %.3f xi %.3f rho %.3f",
                  cur.GaugeValue("train.kappa"), cur.GaugeValue("train.xi"),
                  cur.GaugeValue("train.rho"));
    line += buf;
  }

  // Pool utilization: lane-busy nanoseconds per wall-second per lane.
  const double pool_threads = cur.GaugeValue("threadpool.threads");
  if (pool_threads > 0.0) {
    const uint64_t busy = cur.CounterValue("threadpool.busy_ns") -
                          prev.CounterValue("threadpool.busy_ns");
    const double frac =
        static_cast<double>(busy) / (dt * 1e9 * pool_threads);
    std::snprintf(buf, sizeof(buf), " | pool %d thr %.0f%% busy",
                  static_cast<int>(pool_threads), frac * 100.0);
    line += buf;
  }
  return line;
}

void StatsReporter::Loop() {
  MetricsSnapshot prev = SnapshotMetrics();
  Stopwatch watch;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    const bool stopping = cv_.wait_for(
        lock, std::chrono::duration<double>(period_seconds_),
        [this]() { return stop_; });
    const double dt = watch.ElapsedSeconds();
    watch.Restart();
    MetricsSnapshot cur = SnapshotMetrics();
    CEWS_LOG(Info) << FormatHeartbeat(prev, cur, dt);
    prev = std::move(cur);
    if (stopping) return;
  }
}

}  // namespace cews::obs
