// cews::obs — lock-cheap metrics registry.
//
// Counters and histograms write to thread-local shards: a hot-path
// Counter::Add is one relaxed load + store on a cache line owned by the
// calling thread (no lock prefix, no contention), yet scrapes from another
// thread are race-free because the slots are relaxed atomics. Shards of
// exited threads are folded into a retired accumulator, so totals survive
// the short-lived employee threads the trainers spawn per Train() call.
// Gauges are rare-write/last-write-wins and live directly in the registry.
//
// Metric objects are created on first GetCounter/GetGauge/GetHistogram and
// live for the process lifetime; instrumented code caches the pointer in a
// function-local static:
//
//   static obs::Counter* const steps = obs::GetCounter("env.steps");
//   steps->Add(1);
//
// Snapshot() aggregates every shard into a deterministic (name-sorted)
// MetricsSnapshot with JSON and CSV/table emitters (reusing common/table).
#ifndef CEWS_OBS_METRICS_H_
#define CEWS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace cews::obs {

/// Number of exponential histogram buckets. Bucket i counts values v with
/// 2^i <= v < 2^(i+1) (bucket 0 also counts v == 0); values past the last
/// bound clamp into the final bucket. 40 buckets resolve nanosecond-scale
/// durations up to ~9 minutes.
inline constexpr int kHistogramBuckets = 40;

/// Fixed shard capacities. Metrics are a small, hand-curated set; creation
/// CHECK-fails past these bounds rather than complicating the hot path with
/// growable (and then lock-guarded) shard storage. The serve fleet mints
/// one counter per server shard (serve.shard.N.shed, N bounded at 64 by
/// Fleet::Create), so the counter cap leaves headroom for a full-size
/// fleet plus the hand-written set.
///
/// Histogram headroom math: a full-size fleet mints one latency histogram
/// per shard (serve.shard.N.latency_ns, N < 64) on top of the hand-written
/// set (~25 names today, growing slowly). 64 + 25 would already exceed the
/// old cap of 64 and trip the creation CHECK at shard 39; 192 leaves
/// ~100 slots of headroom for future instrumented subsystems.
inline constexpr int kMaxCounters = 320;
inline constexpr int kMaxHistograms = 192;

class Registry;

/// Monotonically increasing counter.
class Counter {
 public:
  /// Wait-free; bumps the calling thread's shard slot.
  void Add(uint64_t delta);
  void Increment() { Add(1); }

 private:
  friend class Registry;
  explicit Counter(int slot) : slot_(slot) {}
  const int slot_;
};

/// Last-write-wins instantaneous value (loss, kappa, pool size, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Histogram over fixed exponential buckets, tracking count and sum too.
class Histogram {
 public:
  /// Wait-free; records into the calling thread's shard.
  void Record(uint64_t value);

 private:
  friend class Registry;
  explicit Histogram(int slot) : slot_(slot) {}
  const int slot_;
};

/// RAII duration recorder: records elapsed nanoseconds into a histogram on
/// destruction. Pass a second histogram-or-null to double-record (e.g. a
/// per-op and a rolled-up total).
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram* hist)
      : hist_(hist), start_(Stopwatch::NowNs()) {}
  ~ScopedTimerNs() { hist_->Record(Stopwatch::NowNs() - start_); }
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Histogram* const hist_;
  const uint64_t start_;
};

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Estimate of the value below which a fraction p of samples fall
  /// (p in [0, 1]); 0 when empty. Linearly interpolates within the winning
  /// exponential bucket — the estimate is exact for uniform in-bucket
  /// distributions and never overstates by more than one bucket width
  /// (the old behavior returned the bucket *upper bound*, a systematic
  /// up-to-2x overestimate).
  uint64_t Percentile(double p) const;
};

/// A consistent, name-sorted view of every registered metric.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* FindCounter(const std::string& name) const;
  const GaugeSnapshot* FindGauge(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  /// Counter value by name, 0 when absent (heartbeat rate arithmetic).
  uint64_t CounterValue(const std::string& name) const;
  /// Gauge value by name, 0.0 when absent.
  double GaugeValue(const std::string& name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// mean, p50, p99, buckets}}} — keys sorted, stable across runs with equal
  /// values.
  std::string ToJson() const;

  /// One row per metric: name | type | count | value/sum | mean | p50 | p99.
  Table ToTable() const;
  std::string ToCsv() const { return ToTable().ToCsv(); }
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

class Registry {
 public:
  /// The process-wide registry (leaked, never destroyed: metric pointers and
  /// thread-exit flushes stay valid during static teardown).
  static Registry& Global();

  /// Create-or-lookup by name; the returned pointer is valid forever.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Aggregates all shards (live and retired) into a name-sorted snapshot.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every counter/histogram shard and gauge. Test-only: must not
  /// race with concurrent writers.
  void ResetForTest();

 private:
  Registry() = default;
};

/// Convenience accessors against Registry::Global().
Counter* GetCounter(const std::string& name);
Gauge* GetGauge(const std::string& name);
Histogram* GetHistogram(const std::string& name);
MetricsSnapshot SnapshotMetrics();

/// Writes SnapshotMetrics().ToJson() to `path`.
Status WriteMetricsJson(const std::string& path);

/// Profile summary over every histogram with samples plus rate-style
/// counters: the table benches print (name | count | total ms | mean us |
/// p50 us | p99 us).
Table ProfileTable();

}  // namespace cews::obs

#endif  // CEWS_OBS_METRICS_H_
