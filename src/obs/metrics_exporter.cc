#include "obs/metrics_exporter.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "obs/flight_recorder.h"
#include "obs/rolling_histogram.h"

namespace cews::obs {

namespace {

std::string FmtDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; cews names use dots and
/// the rolling-window "[10s]" suffix.
std::string PromName(const std::string& name) {
  std::string out = "cews_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

Status AtomicWriteFile(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    out << body;
    if (!out) return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename " + tmp + " over " + path);
  }
  return Status::OK();
}

}  // namespace

MetricsExporter::MetricsExporter(MetricsExporterConfig config)
    : config_(std::move(config)) {
  CEWS_CHECK_GT(config_.period_seconds, 0.0);
  thread_ = std::thread([this]() { Loop(); });
}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::string MetricsExporter::PrometheusText(const MetricsSnapshot& snap) {
  std::ostringstream os;
  for (const CounterSnapshot& c : snap.counters) {
    const std::string name = PromName(c.name);
    os << "# TYPE " << name << " counter\n"
       << name << " " << c.value << "\n";
  }
  for (const GaugeSnapshot& g : snap.gauges) {
    const std::string name = PromName(g.name);
    os << "# TYPE " << name << " gauge\n"
       << name << " " << FmtDouble(g.value) << "\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    const std::string name = PromName(h.name);
    os << "# TYPE " << name << " summary\n"
       << name << "_count " << h.count << "\n"
       << name << "_sum " << h.sum << "\n"
       << name << "_p50 " << h.Percentile(0.5) << "\n"
       << name << "_p99 " << h.Percentile(0.99) << "\n";
  }
  return os.str();
}

std::string MetricsExporter::JsonlLine(const MetricsSnapshot& snap,
                                       uint64_t ts_ns) {
  std::ostringstream os;
  os << "{\"ts_ns\": " << ts_ns << ", \"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\"" << snap.counters[i].name
       << "\": " << snap.counters[i].value;
  }
  os << "}, \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\"" << snap.gauges[i].name
       << "\": " << FmtDouble(snap.gauges[i].value);
  }
  os << "}, \"histograms\": {";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    os << (i == 0 ? "" : ", ") << "\"" << h.name << "\": {\"count\": "
       << h.count << ", \"mean\": " << FmtDouble(h.Mean())
       << ", \"p50\": " << h.Percentile(0.5)
       << ", \"p99\": " << h.Percentile(0.99)
       << ", \"p999\": " << h.Percentile(0.999) << "}";
  }
  os << "}}";
  return os.str();
}

Status MetricsExporter::ExportOnce(uint64_t now_ns) {
  const uint64_t ts_ns = now_ns == 0 ? Stopwatch::NowNs() : now_ns;
  Status first_error = Status::OK();

  // 1. SLO pass first so slo.* gauges land in this tick's snapshot.
  if (config_.slo != nullptr) config_.slo->Evaluate(ts_ns);

  // 2. Windowed gauges from every rolling histogram. The latency rolling
  // histograms record nanoseconds; the gauges speak microseconds to match
  // the SLO spec and the bench tables.
  for (RollingHistogram* hist : AllRollingHistograms()) {
    for (const int window : config_.windows) {
      const HistogramSnapshot snap = hist->Window(window, ts_ns);
      const std::string stem =
          hist->name() + "." + std::to_string(window) + "s";
      GetGauge(stem + ".count")->Set(static_cast<double>(snap.count));
      GetGauge(stem + ".p50_us")
          ->Set(static_cast<double>(snap.Percentile(0.5)) / 1e3);
      GetGauge(stem + ".p99_us")
          ->Set(static_cast<double>(snap.Percentile(0.99)) / 1e3);
      GetGauge(stem + ".p999_us")
          ->Set(static_cast<double>(snap.Percentile(0.999)) / 1e3);
    }
  }

  const MetricsSnapshot snap = SnapshotMetrics();

  // 3. JSONL append.
  if (!config_.jsonl_path.empty()) {
    std::ofstream out(config_.jsonl_path, std::ios::app);
    if (!out) {
      first_error =
          Status::IOError("cannot open " + config_.jsonl_path + " to append");
    } else {
      out << JsonlLine(snap, ts_ns) << "\n";
      if (!out && first_error.ok()) {
        first_error = Status::IOError("short write to " + config_.jsonl_path);
      }
    }
  }

  // 4. Prometheus exposition.
  if (!config_.prom_path.empty()) {
    const Status prom = AtomicWriteFile(config_.prom_path,
                                        PrometheusText(snap));
    if (!prom.ok() && first_error.ok()) first_error = prom;
  }

  // 5. Crash-dump snapshot refresh.
  if (config_.update_flight_recorder) {
    FlightRecorder::Global().SetMetricsJson(snap.ToJson());
  }
  return first_error;
}

void MetricsExporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const bool stopping = cv_.wait_for(
        lock, std::chrono::duration<double>(config_.period_seconds),
        [this]() { return stop_; });
    lock.unlock();
    ExportOnce();  // sink errors already carry the path; nothing to add
    lock.lock();
    if (stopping) return;
  }
}

}  // namespace cews::obs
