#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "common/stopwatch.h"

namespace cews::obs {

namespace {

// ---------------------------------------------------------------------------
// Async-signal-safe primitives. Nothing in this block may call malloc,
// stdio, or take a lock: it runs inside fatal-signal handlers.
// ---------------------------------------------------------------------------

size_t SafeStrLen(const char* s, size_t max) {
  size_t n = 0;
  while (n < max && s[n] != '\0') ++n;
  return n;
}

void WriteAll(int fd, const char* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // nowhere to report an IO error from a signal handler
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
}

/// Buffered fd writer with hand-rolled number formatting.
struct FdWriter {
  explicit FdWriter(int fd) : fd(fd) {}
  ~FdWriter() { Flush(); }

  void Flush() {
    if (len > 0) WriteAll(fd, buf, len);
    len = 0;
  }
  void Append(const char* s, size_t n) {
    while (n > 0) {
      if (len == sizeof(buf)) Flush();
      const size_t chunk = n < sizeof(buf) - len ? n : sizeof(buf) - len;
      std::memcpy(buf + len, s, chunk);
      len += chunk;
      s += chunk;
      n -= chunk;
    }
  }
  void Str(const char* s) { Append(s, SafeStrLen(s, ~size_t{0})); }
  void U64(uint64_t v) {
    char tmp[20];
    int i = 20;
    do {
      tmp[--i] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    Append(tmp + i, static_cast<size_t>(20 - i));
  }
  void I64(int64_t v) {
    if (v < 0) {
      Str("-");
      // Negate via unsigned arithmetic so INT64_MIN doesn't overflow.
      U64(~static_cast<uint64_t>(v) + 1);
    } else {
      U64(static_cast<uint64_t>(v));
    }
  }

  const int fd;
  char buf[4096];
  size_t len = 0;
};

const char* SignalName(int signo) {
  switch (signo) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    default: return "signal";
  }
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kNone: return "none";
    case FlightEventKind::kServerStart: return "server_start";
    case FlightEventKind::kServerStop: return "server_stop";
    case FlightEventKind::kPublish: return "publish";
    case FlightEventKind::kEpochSwap: return "epoch_swap";
    case FlightEventKind::kShed: return "shed";
    case FlightEventKind::kSloBreach: return "slo_breach";
    case FlightEventKind::kSloRecover: return "slo_recover";
    case FlightEventKind::kNote: return "note";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder;  // leaked on purpose
  return *recorder;
}

void FlightRecorder::Record(FlightEventKind kind, const char* detail,
                            int64_t a, int64_t b) {
  const uint64_t ticket =
      next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[static_cast<size_t>((ticket - 1) %
                                          kFlightRingSlots)];
  slot.seq.store(kBusySeq, std::memory_order_relaxed);
  slot.ts_ns.store(Stopwatch::NowNs(), std::memory_order_relaxed);
  slot.kind.store(static_cast<uint32_t>(kind), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  // Sanitize at record time (not dump time) so the async-signal-safe dump
  // can splice the detail into JSON without an escaping pass.
  char clean[kFlightDetailBytes] = {0};
  if (detail != nullptr) {
    const size_t n = SafeStrLen(detail, kFlightDetailBytes);
    for (size_t i = 0; i < n; ++i) {
      const char c = detail[i];
      clean[i] = (c == '"' || c == '\\' ||
                  static_cast<unsigned char>(c) < 0x20)
                     ? '_'
                     : c;
    }
  }
  for (int w = 0; w < kFlightDetailWords; ++w) {
    uint64_t word = 0;
    std::memcpy(&word, clean + w * 8, 8);
    slot.detail[static_cast<size_t>(w)].store(word,
                                              std::memory_order_relaxed);
  }
  slot.seq.store(ticket, std::memory_order_release);
}

void FlightRecorder::SetMetricsJson(const std::string& json) {
  const int active = metrics_active_.load(std::memory_order_relaxed);
  const int target = active == 0 ? 1 : 0;
  auto& arena = metrics_json_[static_cast<size_t>(target)];
  if (json.size() < arena.size()) {
    std::memcpy(arena.data(), json.data(), json.size());
    metrics_len_[static_cast<size_t>(target)].store(
        static_cast<int>(json.size()), std::memory_order_relaxed);
  } else {
    std::memcpy(arena.data(), "null", 4);
    metrics_len_[static_cast<size_t>(target)].store(
        4, std::memory_order_relaxed);
  }
  metrics_active_.store(target, std::memory_order_release);
}

void FlightRecorder::DumpToFd(int fd, const char* reason) {
  FdWriter out(fd);
  out.Str("{\n\"schema\": \"cews.postmortem.v1\",\n\"reason\": \"");
  // The reason strings are internal literals; sanitize anyway so a caller-
  // supplied reason cannot break the document.
  {
    const size_t n = SafeStrLen(reason, 128);
    for (size_t i = 0; i < n; ++i) {
      const char c = reason[i];
      const char safe = (c == '"' || c == '\\' ||
                         static_cast<unsigned char>(c) < 0x20)
                            ? '_'
                            : c;
      out.Append(&safe, 1);
    }
  }
  out.Str("\",\n\"pid\": ");
  out.I64(static_cast<int64_t>(::getpid()));
  out.Str(",\n\"events\": [");

  const uint64_t next = next_seq_.load(std::memory_order_acquire);
  const uint64_t first =
      next > kFlightRingSlots ? next - kFlightRingSlots : 0;
  bool first_event = true;
  for (uint64_t t = first + 1; t <= next; ++t) {
    const Slot& slot =
        slots_[static_cast<size_t>((t - 1) % kFlightRingSlots)];
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 != t) continue;  // overwritten by a newer lap, or mid-write
    const uint64_t ts = slot.ts_ns.load(std::memory_order_relaxed);
    const uint32_t kind = slot.kind.load(std::memory_order_relaxed);
    const int64_t a = slot.a.load(std::memory_order_relaxed);
    const int64_t b = slot.b.load(std::memory_order_relaxed);
    char detail[kFlightDetailBytes + 1] = {0};
    for (int w = 0; w < kFlightDetailWords; ++w) {
      const uint64_t word =
          slot.detail[static_cast<size_t>(w)].load(std::memory_order_relaxed);
      std::memcpy(detail + w * 8, &word, 8);
    }
    if (slot.seq.load(std::memory_order_acquire) != t) continue;  // torn
    out.Str(first_event ? "\n" : ",\n");
    first_event = false;
    out.Str("{\"seq\": ");
    out.U64(t);
    out.Str(", \"ts_ns\": ");
    out.U64(ts);
    out.Str(", \"kind\": \"");
    out.Str(FlightEventKindName(static_cast<FlightEventKind>(kind)));
    out.Str("\", \"detail\": \"");
    out.Str(detail);
    out.Str("\", \"a\": ");
    out.I64(a);
    out.Str(", \"b\": ");
    out.I64(b);
    out.Str("}");
  }
  out.Str("\n],\n\"metrics\": ");
  const int active = metrics_active_.load(std::memory_order_acquire);
  if (active < 0) {
    out.Str("null");
  } else {
    const int len =
        metrics_len_[static_cast<size_t>(active)].load(
            std::memory_order_relaxed);
    out.Append(metrics_json_[static_cast<size_t>(active)].data(),
               static_cast<size_t>(len));
  }
  out.Str("\n}\n");
  out.Flush();
}

Status FlightRecorder::WriteDump(const std::string& path,
                                 const char* reason) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + " for post-mortem dump");
  }
  DumpToFd(fd, reason);  // same formatter as the signal path, by design
  ::close(fd);
  return Status::OK();
}

std::vector<FlightEvent> FlightRecorder::Collect() const {
  std::vector<FlightEvent> events;
  const uint64_t next = next_seq_.load(std::memory_order_acquire);
  const uint64_t first =
      next > kFlightRingSlots ? next - kFlightRingSlots : 0;
  events.reserve(static_cast<size_t>(next - first));
  for (uint64_t t = first + 1; t <= next; ++t) {
    const Slot& slot =
        slots_[static_cast<size_t>((t - 1) % kFlightRingSlots)];
    if (slot.seq.load(std::memory_order_acquire) != t) continue;
    FlightEvent event;
    event.seq = t;
    event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    event.kind = static_cast<FlightEventKind>(
        slot.kind.load(std::memory_order_relaxed));
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    char detail[kFlightDetailBytes + 1] = {0};
    for (int w = 0; w < kFlightDetailWords; ++w) {
      const uint64_t word =
          slot.detail[static_cast<size_t>(w)].load(std::memory_order_relaxed);
      std::memcpy(detail + w * 8, &word, 8);
    }
    if (slot.seq.load(std::memory_order_acquire) != t) continue;
    event.detail = detail;
    events.push_back(std::move(event));
  }
  return events;
}

void FlightRecorder::ClearForTest() {
  next_seq_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) {
    slot.seq.store(0, std::memory_order_relaxed);
    slot.kind.store(0, std::memory_order_relaxed);
  }
  metrics_active_.store(-1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Fatal-signal handler.
// ---------------------------------------------------------------------------

namespace {

char g_postmortem_dir[240] = {0};
std::atomic<bool> g_handler_installed{false};
/// First fatal signal wins the dump; a crash inside the dump re-enters the
/// handler and falls straight through to the re-raise.
std::atomic<bool> g_dump_started{false};

void AppendDec(char* buf, size_t cap, size_t* pos, uint64_t v) {
  char tmp[20];
  int i = 20;
  do {
    tmp[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (i < 20 && *pos + 1 < cap) buf[(*pos)++] = tmp[i++];
}

void FatalSignalHandler(int signo) {
  if (!g_dump_started.exchange(true)) {
    char path[320];
    size_t pos = 0;
    const size_t dir_len = SafeStrLen(g_postmortem_dir,
                                      sizeof(g_postmortem_dir));
    std::memcpy(path, g_postmortem_dir, dir_len);
    pos = dir_len;
    const char* stem = "/postmortem.";
    std::memcpy(path + pos, stem, 12);
    pos += 12;
    AppendDec(path, sizeof(path), &pos,
              static_cast<uint64_t>(::getpid()));
    const char* ext = ".json";
    std::memcpy(path + pos, ext, 5);
    pos += 5;
    path[pos] = '\0';
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      FlightRecorder::Global().DumpToFd(fd, SignalName(signo));
      ::close(fd);
    }
  }
  // Re-raise with the default disposition so the exit status still says
  // "killed by <signo>" (and SIGSEGV still core-dumps where enabled).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void InstallFlightRecorderSignalHandler(const std::string& dir) {
  if (g_handler_installed.exchange(true)) return;
  const size_t n = dir.size() < sizeof(g_postmortem_dir) - 1
                       ? dir.size()
                       : sizeof(g_postmortem_dir) - 1;
  std::memcpy(g_postmortem_dir, dir.data(), n);
  g_postmortem_dir[n] = '\0';
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = FatalSignalHandler;
  sigemptyset(&action.sa_mask);
  const int signals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
                         SIGILL,  SIGTERM, SIGINT};
  for (const int signo : signals) {
    ::sigaction(signo, &action, nullptr);
  }
}

}  // namespace cews::obs
