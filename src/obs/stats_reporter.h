// cews::obs — periodic training heartbeat.
//
// A background thread snapshots the metrics registry every `period_seconds`
// and logs one line of rates and levels:
//
//   heartbeat: 3.9 ep/s | 8.1k steps/s | loss 0.812 | kappa 0.41 xi 0.88
//   rho 0.36 | pool 2 thr 63% busy
//
// Rates (episodes/s, steps/s, pool busy fraction) are deltas between
// consecutive snapshots; levels (loss, kappa/xi/rho) are the gauges the
// trainers maintain. Metrics that have never been written are omitted, so
// the line adapts to whichever trainer is running. When a serving fleet is
// live the line grows a serve section — request and shed rates plus the
// deepest shard queue:
//
//   ... | serve 12.4k req/s 0.0 shed/s qmax 37 | pool 2 thr 63% busy
#ifndef CEWS_OBS_STATS_REPORTER_H_
#define CEWS_OBS_STATS_REPORTER_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace cews::obs {

class StatsReporter {
 public:
  /// Starts the reporter thread. period_seconds must be positive.
  explicit StatsReporter(double period_seconds);

  /// Stops and joins the reporter thread (idempotent). The final heartbeat
  /// covering the tail interval is logged before the thread exits.
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  void Stop();

  /// Formats one heartbeat line from the delta between two snapshots taken
  /// `dt_seconds` apart. Exposed for tests.
  static std::string FormatHeartbeat(const MetricsSnapshot& prev,
                                     const MetricsSnapshot& cur,
                                     double dt_seconds);

 private:
  void Loop();

  const double period_seconds_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace cews::obs

#endif  // CEWS_OBS_STATS_REPORTER_H_
