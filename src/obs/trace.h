// cews::obs — tracing layer: RAII spans recorded into per-thread ring
// buffers, exported as Chrome trace_event JSON (loadable in chrome://tracing
// or https://ui.perfetto.dev).
//
// Cost model: tracing is OFF by default and a disabled CEWS_TRACE_SCOPE is a
// single relaxed atomic load plus two register writes — no clock read, no
// allocation, no branch beyond the check. When enabled (SetTraceEnabled or
// the CEWS_OBS_TRACE env var), each span costs two steady-clock reads and
// three relaxed atomic stores into a ring buffer owned by the recording
// thread. Rings are bounded (CEWS_OBS_TRACE_CAPACITY spans per thread,
// default 65536) and overwrite their oldest spans; they outlive their
// threads so trainer employee spans survive until the trace is written.
#ifndef CEWS_OBS_TRACE_H_
#define CEWS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"

namespace cews::obs {

namespace internal {

extern std::atomic<bool> g_trace_enabled;

/// Appends one finished span to the calling thread's ring buffer.
void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns);

/// Same, with correlation args: `id` tags the span as belonging to one
/// logical request (0 = untagged) and `arg` carries a small scalar (the
/// serve path passes the shard index; -1 = none). Args are emitted into
/// the Chrome trace as an "args" object, so Perfetto can filter one
/// request's phases across threads.
void RecordSpanArgs(const char* name, uint64_t start_ns, uint64_t end_ns,
                    uint64_t id, int64_t arg);

}  // namespace internal

/// True when spans are being recorded. Initialized from CEWS_OBS_TRACE.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Turns span recording on or off at runtime (the CLI's --trace-out flag
/// turns it on before training).
void SetTraceEnabled(bool enabled);

/// RAII span: captures the steady clock on construction and records
/// (name, tid, start, duration) on destruction. `name` must outlive the
/// trace (string literals only). A span constructed while tracing is
/// disabled records nothing, even if tracing is enabled before it closes.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(TraceEnabled() ? name : nullptr),
        start_ns_(name_ != nullptr ? Stopwatch::NowNs() : 0) {}
  ~TraceSpan() {
    if (name_ != nullptr) {
      internal::RecordSpan(name_, start_ns_, Stopwatch::NowNs());
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_;
};

/// One span as collected from the rings.
struct CollectedSpan {
  const char* name = nullptr;
  int tid = 0;  ///< common/log.h LogThreadId numbering
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t id = 0;   ///< Request-correlation id (0 = untagged span).
  int64_t arg = -1;  ///< Scalar arg (serve: shard index; -1 = none).
};

/// Drains a copy of every ring, sorted by (start, tid) for determinism.
/// Spans overwritten by ring wrap-around are gone; a note is logged when
/// any ring wrapped.
std::vector<CollectedSpan> CollectSpans();

/// Renders spans as a Chrome trace_event JSON document ("traceEvents" array
/// of complete events, timestamps in microseconds relative to the earliest
/// span).
std::string SpansToChromeJson(const std::vector<CollectedSpan>& spans);

/// CollectSpans + SpansToChromeJson + write to `path`.
Status WriteChromeTrace(const std::string& path);

/// Empties every ring buffer. Test-only: must not race with live spans.
void ClearTraceForTest();

}  // namespace cews::obs

/// CEWS_TRACE_SCOPE("phase.name"): names the rest of the enclosing scope as
/// one trace span. Near-zero cost while tracing is disabled.
#define CEWS_OBS_INTERNAL_CONCAT2(a, b) a##b
#define CEWS_OBS_INTERNAL_CONCAT(a, b) CEWS_OBS_INTERNAL_CONCAT2(a, b)
#define CEWS_TRACE_SCOPE(name)                                         \
  ::cews::obs::TraceSpan CEWS_OBS_INTERNAL_CONCAT(cews_trace_scope_,   \
                                                  __LINE__)(name)

#endif  // CEWS_OBS_TRACE_H_
