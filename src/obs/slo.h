// cews::obs — declarative SLO targets evaluated against rolling-window
// gauges.
//
// A target is "windowed value must stay under a threshold": latency
// percentiles (p50/p99/p999, microseconds) read the serve path's rolling
// latency histogram over the target's window; the shed ratio reads the
// shed/attempted counter delta since the previous evaluation. Targets are
// parsed from a compact spec string (the CLI's --slo flag):
//
//   "p99<5000,shed<0.01"       p99 under 5 ms over the default 10 s
//                              window, shed ratio under 1%
//   "p50<200@60"               p50 under 200 us over a 60 s window
//
// Each Evaluate() pass produces one SloStatus per target: the measured
// value, whether it breaches, and a burn rate — the fraction of the last
// kBurnWindowEvals evaluations that breached, a cheap stand-in for
// error-budget burn (1.0 = hard down, 0.03 = occasional blips). Breach /
// recover *transitions* (not levels) are recorded into the flight
// recorder and counted in slo.breaches, and per-target value/burn gauges
// are published for the exporter to scrape. A target with no data in its
// window (e.g. before traffic starts) is reported unmeasured and never
// breaches.
#ifndef CEWS_OBS_SLO_H_
#define CEWS_OBS_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace cews::obs {

/// Evaluations remembered per target for the burn rate.
inline constexpr int kBurnWindowEvals = 30;

enum class SloKind {
  kP50,       ///< windowed p50 latency, microseconds
  kP99,       ///< windowed p99 latency, microseconds
  kP999,      ///< windowed p999 latency, microseconds
  kShedRatio  ///< sheds / attempted submits since the previous Evaluate
};

/// Stable token for a kind ("p99", "shed", ...), as written in specs.
const char* SloKindName(SloKind kind);

struct SloTarget {
  SloKind kind = SloKind::kP99;
  /// Upper bound: microseconds for latency kinds, a ratio in [0, 1] for
  /// kShedRatio. The target breaches when value >= threshold.
  double threshold = 0.0;
  /// Rolling window for latency kinds (clamped to the rolling-histogram
  /// ring); ignored by kShedRatio, whose window is the evaluation period.
  int window_seconds = 10;

  /// "p99<5000us@10s" style description (gauge names, flight events).
  std::string Describe() const;
};

/// Parses a comma-separated spec ("p99<5000,shed<0.01,p50<200@60").
/// Latency thresholds are microseconds; shed thresholds are ratios.
Result<std::vector<SloTarget>> ParseSloTargets(const std::string& spec);

struct SloStatus {
  SloTarget target;
  bool measured = false;  ///< false = no samples in window, never a breach
  double value = 0.0;     ///< us for latency kinds, ratio for shed
  bool breached = false;
  double burn_rate = 0.0;  ///< breached fraction of recent evaluations
};

/// Evaluates a fixed target set against the live metrics registry. Not
/// thread-safe: call Evaluate from one thread (the exporter tick or the
/// CLI loop).
class SloMonitor {
 public:
  explicit SloMonitor(std::vector<SloTarget> targets);

  /// One evaluation pass. `now_ns` = 0 reads the steady clock; tests
  /// inject times to line up with injected rolling-histogram records.
  std::vector<SloStatus> Evaluate(uint64_t now_ns = 0);

  const std::vector<SloTarget>& targets() const { return targets_; }

  /// Human-readable status table for the CLI's end-of-run summary.
  static std::string FormatTable(const std::vector<SloStatus>& statuses);

 private:
  struct TargetState {
    /// Ring of the last kBurnWindowEvals breach bits.
    uint32_t history_bits = 0;
    int history_len = 0;
    bool last_breached = false;
  };

  const std::vector<SloTarget> targets_;
  std::vector<TargetState> states_;
  /// Previous counter readings for shed-ratio deltas.
  uint64_t prev_shed_ = 0;
  uint64_t prev_accepted_ = 0;
  bool have_prev_counters_ = false;
};

}  // namespace cews::obs

#endif  // CEWS_OBS_SLO_H_
