#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "common/check.h"

namespace cews::obs {

namespace {

/// Slots per histogram in a shard: count, sum, then the buckets.
constexpr int kHistStride = 2 + kHistogramBuckets;

/// floor(log2(v)) clamped into the bucket range; 0 maps to bucket 0.
int BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  const int b = std::bit_width(v) - 1;
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

/// One thread's slice of every counter/histogram. Slots are relaxed atomics:
/// written only by the owning thread (plain-speed on x86 — no lock prefix,
/// the line stays in the owner's cache), read by scrapers without a race.
struct Shard {
  std::array<std::atomic<uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<uint64_t>, kMaxHistograms * kHistStride> hist{};
};

/// Owner-thread bump; no other thread writes this slot.
inline void Bump(std::atomic<uint64_t>& slot, uint64_t delta) {
  slot.store(slot.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

std::string FmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

namespace {

/// All registry state, file-local and leaked deliberately so metric pointers
/// and thread-exit flushes stay valid through static teardown.
struct RegistryImpl {
  mutable std::mutex mu;

  std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
  std::vector<std::string> counter_names;  // slot -> name
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
  std::vector<std::string> histogram_names;  // slot -> name
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;

  std::vector<Shard*> live_shards;
  /// Accumulated totals of exited threads (multi-writer: real fetch_add).
  Shard retired;
};

RegistryImpl* GlobalImpl() {
  static RegistryImpl* impl = new RegistryImpl;
  return impl;
}

/// Registers this thread's shard for scraping; on thread exit the totals are
/// folded into the retired accumulator so nothing is lost when the trainers'
/// employee threads finish.
struct ShardHandle {
  Shard* shard;
  ShardHandle() : shard(new Shard) {
    RegistryImpl* impl = GlobalImpl();
    std::lock_guard<std::mutex> lock(impl->mu);
    impl->live_shards.push_back(shard);
  }
  ~ShardHandle() {
    RegistryImpl* impl = GlobalImpl();
    std::lock_guard<std::mutex> lock(impl->mu);
    for (int i = 0; i < kMaxCounters; ++i) {
      impl->retired.counters[static_cast<size_t>(i)].fetch_add(
          shard->counters[static_cast<size_t>(i)].load(
              std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    for (size_t i = 0; i < shard->hist.size(); ++i) {
      impl->retired.hist[i].fetch_add(
          shard->hist[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    auto& live = impl->live_shards;
    live.erase(std::find(live.begin(), live.end(), shard));
    delete shard;
  }
};

Shard& LocalShard() {
  thread_local ShardHandle handle;
  return *handle.shard;
}

}  // namespace

void Counter::Add(uint64_t delta) {
  Bump(LocalShard().counters[static_cast<size_t>(slot_)], delta);
}

void Histogram::Record(uint64_t value) {
  Shard& shard = LocalShard();
  const size_t base = static_cast<size_t>(slot_) * kHistStride;
  Bump(shard.hist[base], 1);
  Bump(shard.hist[base + 1], value);
  Bump(shard.hist[base + 2 + static_cast<size_t>(BucketIndex(value))], 1);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry;  // leaked deliberately
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  RegistryImpl* i = GlobalImpl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->counters.find(name);
  if (it != i->counters.end()) return it->second.get();
  const int slot = static_cast<int>(i->counter_names.size());
  CEWS_CHECK_LT(slot, kMaxCounters) << "too many counters; raise kMaxCounters";
  i->counter_names.push_back(name);
  return i->counters.emplace(name, std::unique_ptr<Counter>(new Counter(slot)))
      .first->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  RegistryImpl* i = GlobalImpl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->histograms.find(name);
  if (it != i->histograms.end()) return it->second.get();
  const int slot = static_cast<int>(i->histogram_names.size());
  CEWS_CHECK_LT(slot, kMaxHistograms)
      << "too many histograms; raise kMaxHistograms";
  i->histogram_names.push_back(name);
  return i->histograms
      .emplace(name, std::unique_ptr<Histogram>(new Histogram(slot)))
      .first->second.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  RegistryImpl* i = GlobalImpl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->gauges.find(name);
  if (it != i->gauges.end()) return it->second.get();
  return i->gauges.emplace(name, std::unique_ptr<Gauge>(new Gauge()))
      .first->second.get();
}

MetricsSnapshot Registry::Snapshot() const {
  const RegistryImpl* i = GlobalImpl();
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(i->mu);

  auto slot_total = [&](const Shard& shard, size_t idx) {
    return shard.hist[idx].load(std::memory_order_relaxed);
  };

  snap.counters.reserve(i->counter_names.size());
  for (size_t slot = 0; slot < i->counter_names.size(); ++slot) {
    CounterSnapshot c;
    c.name = i->counter_names[slot];
    c.value = i->retired.counters[slot].load(std::memory_order_relaxed);
    for (const Shard* shard : i->live_shards) {
      c.value += shard->counters[slot].load(std::memory_order_relaxed);
    }
    snap.counters.push_back(std::move(c));
  }

  snap.histograms.reserve(i->histogram_names.size());
  for (size_t slot = 0; slot < i->histogram_names.size(); ++slot) {
    HistogramSnapshot h;
    h.name = i->histogram_names[slot];
    const size_t base = slot * kHistStride;
    h.count = slot_total(i->retired, base);
    h.sum = slot_total(i->retired, base + 1);
    for (int b = 0; b < kHistogramBuckets; ++b) {
      h.buckets[static_cast<size_t>(b)] =
          slot_total(i->retired, base + 2 + static_cast<size_t>(b));
    }
    for (const Shard* shard : i->live_shards) {
      h.count += slot_total(*shard, base);
      h.sum += slot_total(*shard, base + 1);
      for (int b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[static_cast<size_t>(b)] +=
            slot_total(*shard, base + 2 + static_cast<size_t>(b));
      }
    }
    snap.histograms.push_back(std::move(h));
  }

  snap.gauges.reserve(i->gauges.size());
  for (const auto& [name, gauge] : i->gauges) {
    snap.gauges.push_back(GaugeSnapshot{name, gauge->Get()});
  }

  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::ResetForTest() {
  RegistryImpl* i = GlobalImpl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto zero = [](Shard& shard) {
    for (auto& slot : shard.counters) slot.store(0, std::memory_order_relaxed);
    for (auto& slot : shard.hist) slot.store(0, std::memory_order_relaxed);
  };
  zero(i->retired);
  for (Shard* shard : i->live_shards) zero(*shard);
  for (auto& [name, gauge] : i->gauges) gauge->Set(0.0);
}

// ---------------------------------------------------------------------------
// Snapshot queries and emitters.
// ---------------------------------------------------------------------------

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  const double target = p * static_cast<double>(count);
  uint64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    const uint64_t in_bucket = buckets[static_cast<size_t>(b)];
    if (in_bucket > 0 &&
        static_cast<double>(seen + in_bucket) >= target) {
      // Interpolate linearly within the winning bucket [lower, upper):
      // bucket b covers 2^b <= v < 2^(b+1) (bucket 0 starts at 0).
      const uint64_t lower = b == 0 ? 0 : (uint64_t{1} << b);
      const uint64_t upper = uint64_t{1} << (b + 1);
      double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      if (frac < 0.0) frac = 0.0;
      if (frac > 1.0) frac = 1.0;
      return lower + static_cast<uint64_t>(
                         static_cast<double>(upper - lower) * frac);
    }
    seen += in_bucket;
  }
  return UINT64_MAX;
}

namespace {

template <typename T>
const T* FindByName(const std::vector<T>& items, const std::string& name) {
  for (const T& item : items) {
    if (item.name == name) return &item;
  }
  return nullptr;
}

}  // namespace

const CounterSnapshot* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  return FindByName(counters, name);
}
const GaugeSnapshot* MetricsSnapshot::FindGauge(
    const std::string& name) const {
  return FindByName(gauges, name);
}
const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  return FindByName(histograms, name);
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  const CounterSnapshot* c = FindCounter(name);
  return c == nullptr ? 0 : c->value;
}

double MetricsSnapshot::GaugeValue(const std::string& name) const {
  const GaugeSnapshot* g = FindGauge(name);
  return g == nullptr ? 0.0 : g->value;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    os << (i == 0 ? "" : ",") << "\n    \"" << counters[i].name
       << "\": " << counters[i].value;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    os << (i == 0 ? "" : ",") << "\n    \"" << gauges[i].name
       << "\": " << FmtDouble(gauges[i].value);
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    os << (i == 0 ? "" : ",") << "\n    \"" << h.name << "\": {\"count\": "
       << h.count << ", \"sum\": " << h.sum << ", \"mean\": "
       << FmtDouble(h.Mean()) << ", \"p50\": " << h.Percentile(0.5)
       << ", \"p99\": " << h.Percentile(0.99) << ", \"buckets\": [";
    // Trailing zero buckets are elided; the bucket index is its exponent.
    int last = kHistogramBuckets - 1;
    while (last >= 0 && h.buckets[static_cast<size_t>(last)] == 0) --last;
    for (int b = 0; b <= last; ++b) {
      os << (b == 0 ? "" : ", ") << h.buckets[static_cast<size_t>(b)];
    }
    os << "]}";
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

Table MetricsSnapshot::ToTable() const {
  Table table({"metric", "type", "count", "value", "mean", "p50", "p99"});
  for (const CounterSnapshot& c : counters) {
    table.AddRow({c.name, "counter", "", std::to_string(c.value), "", "", ""});
  }
  for (const GaugeSnapshot& g : gauges) {
    table.AddRow({g.name, "gauge", "", FmtDouble(g.value), "", "", ""});
  }
  for (const HistogramSnapshot& h : histograms) {
    table.AddRow({h.name, "histogram", std::to_string(h.count),
                  std::to_string(h.sum), FmtDouble(h.Mean()),
                  std::to_string(h.Percentile(0.5)),
                  std::to_string(h.Percentile(0.99))});
  }
  return table;
}

// ---------------------------------------------------------------------------
// Global convenience surface.
// ---------------------------------------------------------------------------

Counter* GetCounter(const std::string& name) {
  return Registry::Global().GetCounter(name);
}
Gauge* GetGauge(const std::string& name) {
  return Registry::Global().GetGauge(name);
}
Histogram* GetHistogram(const std::string& name) {
  return Registry::Global().GetHistogram(name);
}
MetricsSnapshot SnapshotMetrics() { return Registry::Global().Snapshot(); }

Status WriteMetricsJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << SnapshotMetrics().ToJson();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Table ProfileTable() {
  const MetricsSnapshot snap = SnapshotMetrics();
  // One row per duration source: every histogram, plus every "*_ns" counter
  // (the FLOP-weighted kernel timers record totals only). A sibling
  // "<prefix>.calls" counter supplies the count for the counter rows.
  struct Row {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    const HistogramSnapshot* hist = nullptr;  // null for counter rows
  };
  std::vector<Row> rows;
  for (const HistogramSnapshot& h : snap.histograms) {
    if (h.count == 0) continue;
    rows.push_back(Row{h.name, h.count, h.sum, &h});
  }
  for (const CounterSnapshot& c : snap.counters) {
    if (c.value == 0 || c.name.size() < 4 ||
        c.name.compare(c.name.size() - 3, 3, "_ns") != 0) {
      continue;
    }
    const std::string prefix = c.name.substr(0, c.name.rfind('.'));
    rows.push_back(Row{c.name, snap.CounterValue(prefix + ".calls"),
                       c.value, nullptr});
  }
  // Largest total time first: the profile reads top-down as "where did the
  // wall-clock go".
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.sum != b.sum ? a.sum > b.sum : a.name < b.name;
  });
  Table table(
      {"phase", "count", "total_ms", "mean_us", "p50_us", "p99_us"});
  for (const Row& r : rows) {
    const double mean_ns =
        r.count > 0 ? static_cast<double>(r.sum) / static_cast<double>(r.count)
                    : 0.0;
    table.AddRow(
        {r.name, r.count > 0 ? std::to_string(r.count) : "-",
         Table::Fmt(static_cast<double>(r.sum) * 1e-6, 2),
         r.count > 0 ? Table::Fmt(mean_ns * 1e-3, 2) : "-",
         r.hist != nullptr
             ? Table::Fmt(static_cast<double>(r.hist->Percentile(0.5)) * 1e-3,
                          2)
             : "-",
         r.hist != nullptr
             ? Table::Fmt(static_cast<double>(r.hist->Percentile(0.99)) * 1e-3,
                          2)
             : "-"});
  }
  return table;
}

}  // namespace cews::obs
