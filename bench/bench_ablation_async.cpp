// Ablation of the distributed-architecture design choice (Section V-A): the
// paper argues for *synchronous* chief-employee updates because asynchrony
// introduces policy-lag. Compares, on one scenario and equal episode
// budgets: synchronous PPO, asynchronous actor-critic (lag uncorrected),
// and asynchronous actor-critic with V-trace correction (Espeholt et al.).
#include "agents/async_trainer.h"
#include "bench/bench_util.h"
#include "core/drl_cews.h"

int main() {
  using namespace cews;
  bench::Banner("Ablation: synchronous vs asynchronous updates",
                "Section V-A design choice");
  const core::BenchmarkOptions options = bench::BenchOptions(/*seed=*/23);
  const int pois = bench::Scaled(150, 300);
  const env::Map map =
      bench::MakeBenchMap(bench::BenchMapConfig(pois, 2, 4), 42);
  const env::EnvConfig env_config = bench::BenchEnvConfig();
  const int employees = bench::Scaled(2, 8);
  const int episodes = options.episodes;

  Table table({"trainer", "kappa", "xi", "rho", "seconds"});

  {  // Synchronous chief-employee PPO (dense reward for a fair comparison —
     // the async trainer has no curiosity module).
    agents::TrainerConfig config = core::MakeTrainerConfig(
        core::Algorithm::kDppo, env_config, options);
    config.num_employees = employees;
    core::DrlCews system(config, map);
    const agents::TrainResult train = system.Train();
    const agents::EvalResult r = system.Evaluate(options.eval_episodes);
    table.AddRow({"sync PPO (chief-employee)", Table::Fmt(r.kappa),
                  Table::Fmt(r.xi), Table::Fmt(r.rho),
                  Table::Fmt(train.seconds, 1)});
    std::printf("  sync PPO        kappa=%.3f rho=%.3f (%.1fs)\n", r.kappa,
                r.rho, train.seconds);
    std::fflush(stdout);
  }

  for (const bool vtrace : {false, true}) {
    agents::AsyncTrainerConfig config;
    config.num_employees = employees;
    config.episodes = episodes;  // per employee, matching the sync budget
    config.use_vtrace = vtrace;
    config.env = env_config;
    config.encoder.grid = options.grid;
    config.net = options.net;
    config.net.grid = options.grid;
    config.lr = options.lr;
    config.gamma = options.gamma;
    config.reward_scale = options.reward_scale;
    config.seed = options.seed;
    agents::AsyncTrainer trainer(config, map);
    const agents::TrainResult train = trainer.Train();
    env::Env env(env_config, map);
    env::StateEncoder encoder({options.grid});
    Rng rng(options.seed * 31 + 5);
    const agents::EvalResult r = agents::EvaluatePolicyAveraged(
        trainer.global_net(), env, encoder, rng, options.eval_episodes);
    const char* name = vtrace ? "async A2C + V-trace" : "async A2C (no correction)";
    table.AddRow({name, Table::Fmt(r.kappa), Table::Fmt(r.xi),
                  Table::Fmt(r.rho), Table::Fmt(train.seconds, 1)});
    std::printf("  %-24s kappa=%.3f rho=%.3f (%.1fs)\n", name, r.kappa,
                r.rho, train.seconds);
    std::fflush(stdout);
  }
  std::printf("\n");
  bench::Emit(table, "ablation_async");
  return 0;
}
