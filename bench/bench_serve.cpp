// Benchmark of the serve subsystem, in two parts:
//
//   1. Closed-loop batching sweep — completion-gated clients against a
//      single-shard fleet, sweeping offered load (clients) x micro-batch
//      bound (max_batch) x inference workers. Shows how well concurrent
//      requests coalesce into shared Forwards (mean_batch) and what that
//      does to throughput. Closed-loop latency flatters the server under
//      load (clients slow down with it), so these rows are for throughput
//      and batching conclusions only.
//
//   2. Open-loop fleet sweep — Poisson arrivals at arrival_rps from a
//      simulated population of up to 10^6 client ids (ids drive the
//      consistent-hash routing; no thread per client), sweeping shards x
//      population x arrival rate. Latency is charged from each request's
//      scheduled arrival (no coordinated omission) and shards run bounded
//      queues, so overload shows up honestly: p99/p999 growth up to the
//      admission bound, then counted sheds — never a blocked arrival
//      process. The shards=1 vs shards=2 rows at the same rate are the
//      scaling comparison (meaningful on multi-core hosts only; see the
//      caveat printed at the end).
//
// Writes BENCH_serve.json (path overridable via CEWS_BENCH_SERVE_OUT) with
// one record per row of both sweeps.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "env/env.h"
#include "env/map.h"
#include "obs/rolling_histogram.h"
#include "serve/fleet.h"
#include "serve/loadgen.h"

namespace {

using namespace cews;

env::Map BenchMap() {
  env::MapConfig config;
  config.num_pois = 40;
  config.num_workers = 2;
  config.num_stations = 2;
  config.num_obstacles = 2;
  Rng rng(42);
  auto result = env::GenerateMap(config, rng);
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

serve::FleetConfig BaseFleet(const env::Map& map,
                             const env::EnvConfig& env_config) {
  serve::FleetConfig base;
  base.net.grid = 12;
  base.net.num_workers = static_cast<int>(map.worker_spawns.size());
  base.net.num_moves = env_config.action_space.num_moves();
  base.net.conv1_channels = 4;
  base.net.conv2_channels = 6;
  base.net.conv3_channels = 6;
  base.net.feature_dim = 64;
  base.max_queue_delay_us = 200;
  base.runtime_threads = 1;  // isolate batching gains from kernel threading
  base.seed = 7;
  return base;
}

struct ClosedPoint {
  int clients;
  int max_batch;
  int threads;
};

struct OpenPoint {
  int shards;
  int clients;  // simulated id population
  double arrival_rps;
  /// Per-shard admission bound and flush delay. The default bound is
  /// generous; the admission-control row shrinks it (and slows flushes) so
  /// the arrival rate provably exceeds service capacity and the sheds are
  /// visible in the JSON.
  int max_queue_depth = 256;
  int64_t delay_us = 200;
};

/// One JSON record; fields follow serve::LoadResult. `roll_p99_us` is the
/// server-side rolling-window p99 (0 for closed-loop rows, which don't
/// validate it) — comparable against the loadgen-measured latency_p99_us,
/// modulo the open loop charging from scheduled arrival.
std::string JsonRow(const char* mode, int shards, int clients, int max_batch,
                    int threads, double arrival_rps,
                    const serve::LoadResult& r, double roll_p99_us = 0.0,
                    const char* precision = "fp32") {
  char buf[704];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"mode\": \"%s\", \"precision\": \"%s\", \"shards\": %d, "
      "\"clients\": %d, "
      "\"max_batch\": %d, \"threads_per_shard\": %d, \"arrival_rps\": %.1f, "
      "\"requests\": %llu, \"shed\": %llu, \"errors\": %llu, "
      "\"offered_rps\": %.1f, \"throughput_rps\": %.1f, "
      "\"latency_mean_us\": %.1f, \"latency_p50_us\": %.1f, "
      "\"latency_p95_us\": %.1f, \"latency_p99_us\": %.1f, "
      "\"latency_p999_us\": %.1f, \"roll_p99_us\": %.1f, "
      "\"mean_batch\": %.2f}",
      mode, precision, shards, clients, max_batch, threads, arrival_rps,
      static_cast<unsigned long long>(r.requests),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.errors), r.offered_rps,
      r.throughput_rps, r.latency_mean_us, r.latency_p50_us,
      r.latency_p95_us, r.latency_p99_us, r.latency_p999_us, roll_p99_us,
      r.mean_batch);
  return buf;
}

}  // namespace

int main() {
  const env::Map map = BenchMap();
  const env::EnvConfig env_config;
  const serve::FleetConfig base = BaseFleet(map, env_config);
  std::vector<std::string> json_rows;

  // -------------------------------------------------------------------
  // Part 1: closed-loop batching sweep (single shard, unbounded queue —
  // the closed loop cannot overrun it).
  // -------------------------------------------------------------------
  const std::vector<ClosedPoint> closed_sweep = {
      {1, 1, 1}, {8, 1, 1}, {8, 8, 1}, {8, 16, 1},
      {16, 16, 1}, {8, 8, 2}, {16, 16, 2},
  };

  Table closed_table({"clients", "max_batch", "threads", "rps", "mean_us",
                      "p50_us", "p95_us", "p99_us", "mean_batch"});
  for (const ClosedPoint& point : closed_sweep) {
    serve::FleetConfig config = base;
    config.num_shards = 1;
    config.max_batch = point.max_batch;
    config.threads_per_shard = point.threads;
    config.max_queue_depth = 0;
    auto fleet = serve::Fleet::Create(config);
    if (!fleet.ok()) {
      std::fprintf(stderr, "fleet: %s\n", fleet.status().ToString().c_str());
      return 1;
    }

    serve::LoadSpec spec;
    spec.mode = serve::LoadMode::kClosedLoop;
    spec.clients = point.clients;
    spec.requests_per_client = 50;
    spec.env = env_config;
    auto result = serve::RunLoad(*fleet.value(), map, spec);
    if (!result.ok()) {
      std::fprintf(stderr, "loadgen: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const serve::LoadResult& r = result.value();
    if (r.errors != 0 || r.shed != 0) {
      std::fprintf(stderr, "closed loop reported %llu errors, %llu shed\n",
                   static_cast<unsigned long long>(r.errors),
                   static_cast<unsigned long long>(r.shed));
      return 1;
    }
    closed_table.AddRow({std::to_string(point.clients),
                         std::to_string(point.max_batch),
                         std::to_string(point.threads),
                         Table::Fmt(r.throughput_rps, 1),
                         Table::Fmt(r.latency_mean_us, 1),
                         Table::Fmt(r.latency_p50_us, 1),
                         Table::Fmt(r.latency_p95_us, 1),
                         Table::Fmt(r.latency_p99_us, 1),
                         Table::Fmt(r.mean_batch, 2)});
    json_rows.push_back(JsonRow("closed", 1, point.clients, point.max_batch,
                                point.threads, 0.0, r));
  }
  std::printf("closed-loop batching sweep (1 shard):\n%s\n",
              closed_table.ToString().c_str());

  // -------------------------------------------------------------------
  // Part 2: open-loop fleet sweep — shards x client population x arrival
  // rate, bounded per-shard queues.
  // -------------------------------------------------------------------
  const std::vector<OpenPoint> open_sweep = {
      // Scaling comparison: same rate, 1 vs 2 shards.
      {1, 10'000, 500.0},   {2, 10'000, 500.0},
      {1, 10'000, 1'000.0}, {2, 10'000, 1'000.0},
      {1, 10'000, 2'000.0}, {2, 10'000, 2'000.0},
      // Overload: far past one core's capacity — sheds, not queues.
      {1, 10'000, 4'000.0}, {2, 10'000, 4'000.0},
      // Population sweep at fixed rate: routing/bookkeeping cost of large
      // simulated fleets (10^5 and 10^6 distinct client ids).
      {2, 100'000, 1'000.0},
      {2, 1'000'000, 1'000.0},
      // Admission-control demo: flushes throttled to ~max_batch/5ms per
      // shard (~1.6k rps service ceiling) under a 4k rps arrival stream
      // with an 8-deep queue — the excess MUST surface as counted sheds
      // while the arrival process never blocks.
      {1, 10'000, 4'000.0, /*max_queue_depth=*/8, /*delay_us=*/5'000},
  };

  Table open_table({"shards", "clients", "arrival_rps", "offered_rps",
                    "rps", "shed", "p50_us", "p99_us", "p999_us",
                    "roll_p99_us", "mean_batch"});
  for (const OpenPoint& point : open_sweep) {
    // Each row gets a self-contained rolling window: the previous row's
    // fleet is gone (no writers), so resetting here is race-free and the
    // roll_p99 column reflects only this row's samples.
    for (obs::RollingHistogram* hist : obs::AllRollingHistograms()) {
      hist->ResetForTest();
    }
    serve::FleetConfig config = base;
    config.num_shards = point.shards;
    config.threads_per_shard = 1;
    config.max_batch = 8;
    config.max_queue_delay_us = point.delay_us;
    config.max_queue_depth = point.max_queue_depth;  // overload is shed
    auto fleet = serve::Fleet::Create(config);
    if (!fleet.ok()) {
      std::fprintf(stderr, "fleet: %s\n", fleet.status().ToString().c_str());
      return 1;
    }

    serve::LoadSpec spec;
    spec.mode = serve::LoadMode::kOpenLoop;
    spec.clients = point.clients;
    spec.arrival_rps = point.arrival_rps;
    spec.duration_seconds = 0.5;
    spec.submit_threads = 2;
    spec.env = env_config;
    auto result = serve::RunLoad(*fleet.value(), map, spec);
    if (!result.ok()) {
      std::fprintf(stderr, "loadgen: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const serve::LoadResult& r = result.value();
    if (r.errors != 0) {
      std::fprintf(stderr, "open loop reported %llu errors\n",
                   static_cast<unsigned long long>(r.errors));
      return 1;
    }
    // Server-side windowed p99 over the whole (reset-scoped) row: the
    // widest window covers the 0.5 s run entirely. The loadgen number
    // charges from scheduled arrival, the server from enqueue — under
    // submit backlog the former reads higher; both should agree closely
    // when the fleet keeps up.
    const obs::HistogramSnapshot roll =
        obs::GetRollingHistogram("serve.fleet.latency")
            ->Window(obs::kMaxWindowSeconds);
    const double roll_p99_us =
        roll.count == 0
            ? 0.0
            : static_cast<double>(roll.Percentile(0.99)) / 1e3;
    open_table.AddRow({std::to_string(point.shards),
                       std::to_string(point.clients),
                       Table::Fmt(point.arrival_rps, 0),
                       Table::Fmt(r.offered_rps, 1),
                       Table::Fmt(r.throughput_rps, 1),
                       std::to_string(r.shed),
                       Table::Fmt(r.latency_p50_us, 1),
                       Table::Fmt(r.latency_p99_us, 1),
                       Table::Fmt(r.latency_p999_us, 1),
                       Table::Fmt(roll_p99_us, 1),
                       Table::Fmt(r.mean_batch, 2)});
    json_rows.push_back(JsonRow("open", point.shards, point.clients, 8, 1,
                                point.arrival_rps, r, roll_p99_us));
  }
  std::printf("open-loop fleet sweep (Poisson arrivals, max_queue=256):\n%s\n",
              open_table.ToString().c_str());

  // -------------------------------------------------------------------
  // Part 3: precision comparison — the identical closed-loop config run
  // at fp32 and at int8 (publish-time-quantized trunk, fp32 heads). Same
  // shard count, batch bound, threads and client load; the only delta is
  // FleetConfig::precision, so the throughput/p99 difference isolates the
  // quantized forward path.
  // -------------------------------------------------------------------
  Table prec_table({"precision", "clients", "max_batch", "rps", "mean_us",
                    "p50_us", "p99_us", "mean_batch"});
  for (const serve::Precision prec :
       {serve::Precision::kFp32, serve::Precision::kInt8}) {
    serve::FleetConfig config = base;
    config.num_shards = 1;
    config.max_batch = 16;
    config.threads_per_shard = 1;
    config.max_queue_depth = 0;
    config.precision = prec;
    auto fleet = serve::Fleet::Create(config);
    if (!fleet.ok()) {
      std::fprintf(stderr, "fleet: %s\n", fleet.status().ToString().c_str());
      return 1;
    }
    serve::LoadSpec spec;
    spec.mode = serve::LoadMode::kClosedLoop;
    spec.clients = 16;
    spec.requests_per_client = 100;
    spec.env = env_config;
    auto result = serve::RunLoad(*fleet.value(), map, spec);
    if (!result.ok()) {
      std::fprintf(stderr, "loadgen: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const serve::LoadResult& r = result.value();
    if (r.errors != 0 || r.shed != 0) {
      std::fprintf(stderr, "precision row reported %llu errors, %llu shed\n",
                   static_cast<unsigned long long>(r.errors),
                   static_cast<unsigned long long>(r.shed));
      return 1;
    }
    prec_table.AddRow({serve::PrecisionName(prec), "16", "16",
                       Table::Fmt(r.throughput_rps, 1),
                       Table::Fmt(r.latency_mean_us, 1),
                       Table::Fmt(r.latency_p50_us, 1),
                       Table::Fmt(r.latency_p99_us, 1),
                       Table::Fmt(r.mean_batch, 2)});
    json_rows.push_back(JsonRow("closed_precision", 1, 16, 16, 1, 0.0, r,
                                0.0, serve::PrecisionName(prec)));
  }
  std::printf("precision comparison (closed loop, equal config):\n%s\n",
              prec_table.ToString().c_str());

  std::string out_path = "BENCH_serve.json";
  if (const char* p = std::getenv("CEWS_BENCH_SERVE_OUT")) out_path = p;
  std::ofstream out(out_path);
  out << "{\n  \"benchmark\": \"serve_fleet_sweep\",\n  \"hardware_threads\": "
      << std::thread::hardware_concurrency()
      << ",\n  \"threads_used\": " << std::thread::hardware_concurrency()
      << ",\n  \"rows\": [\n";
  for (size_t i = 0; i < json_rows.size(); ++i) {
    out << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("json -> %s\n", out_path.c_str());

  std::printf(
      "hardware threads: %u. On a single-core host the multi-shard and\n"
      "threads=2 rows are not meaningful for scaling conclusions (every\n"
      "shard's workers share one core): expect shards=2 ~= shards=1 there,\n"
      "and trust the comparison only on multi-core hardware. The batching\n"
      "comparison (max_batch=1 vs >=8 at clients=8), the shed accounting\n"
      "and the p999-vs-p99 spread are core-count-independent.\n",
      std::thread::hardware_concurrency());
  return 0;
}
