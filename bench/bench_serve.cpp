// Benchmark of the serve subsystem: closed-loop load against a
// serve::PolicyServer, sweeping offered load (clients) x micro-batch bound
// (max_batch) x inference workers (threads).
//
// Each row runs a fresh server and reports client-observed throughput and
// latency percentiles from serve::RunClosedLoopLoad, plus the mean flush
// size (how well concurrent requests coalesced into shared Forwards). The
// interesting comparisons:
//
//   * clients=8, max_batch=1 vs max_batch>=8: the same offered load with
//     batching disabled vs enabled — the batched rows amortize kernel
//     dispatch across coalesced requests.
//   * threads=1 vs threads=2 at fixed load: scaling of the worker pool
//     (meaningful only on multi-core hosts; see the caveat printed at the
//     end on single-core containers).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "env/env.h"
#include "env/map.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace {

using namespace cews;

env::Map BenchMap() {
  env::MapConfig config;
  config.num_pois = 40;
  config.num_workers = 2;
  config.num_stations = 2;
  config.num_obstacles = 2;
  Rng rng(42);
  auto result = env::GenerateMap(config, rng);
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

struct SweepPoint {
  int clients;
  int max_batch;
  int threads;
};

}  // namespace

int main() {
  const env::Map map = BenchMap();
  const env::EnvConfig env_config;

  serve::PolicyServerConfig base;
  base.net.grid = 12;
  base.net.num_workers = static_cast<int>(map.worker_spawns.size());
  base.net.num_moves = env_config.action_space.num_moves();
  base.net.conv1_channels = 4;
  base.net.conv2_channels = 6;
  base.net.conv3_channels = 6;
  base.net.feature_dim = 64;
  base.max_queue_delay_us = 200;
  base.runtime_threads = 1;  // isolate batching gains from kernel threading
  base.seed = 7;

  const std::vector<SweepPoint> sweep = {
      {1, 1, 1},  {8, 1, 1},   {8, 8, 1},  {8, 16, 1},
      {16, 16, 1}, {8, 8, 2},  {16, 16, 2},
  };

  Table table({"clients", "max_batch", "threads", "rps", "mean_us", "p50_us",
               "p95_us", "p99_us", "mean_batch"});
  for (const SweepPoint& point : sweep) {
    serve::PolicyServerConfig config = base;
    config.max_batch = point.max_batch;
    config.num_threads = point.threads;
    auto server = serve::PolicyServer::Create(config);
    if (!server.ok()) {
      std::fprintf(stderr, "server: %s\n",
                   server.status().ToString().c_str());
      return 1;
    }

    serve::LoadGenOptions options;
    options.clients = point.clients;
    options.requests_per_client = 50;
    options.env = env_config;
    auto result = serve::RunClosedLoopLoad(*server.value(), map, options);
    if (!result.ok()) {
      std::fprintf(stderr, "loadgen: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const serve::LoadGenResult& r = result.value();
    if (r.errors != 0) {
      std::fprintf(stderr, "loadgen reported %llu errors\n",
                   static_cast<unsigned long long>(r.errors));
      return 1;
    }
    table.AddRow({std::to_string(point.clients),
                  std::to_string(point.max_batch),
                  std::to_string(point.threads),
                  Table::Fmt(r.throughput_rps, 1),
                  Table::Fmt(r.latency_mean_us, 1),
                  Table::Fmt(r.latency_p50_us, 1),
                  Table::Fmt(r.latency_p95_us, 1),
                  Table::Fmt(r.latency_p99_us, 1),
                  Table::Fmt(r.mean_batch, 2)});
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "hardware threads: %u. On a single-core host the threads=2 rows and\n"
      "the absolute rps are not meaningful for scaling conclusions; the\n"
      "batching comparison (max_batch=1 vs >=8 at clients=8) still is,\n"
      "since coalescing amortizes per-Forward overhead even on one core.\n",
      std::thread::hardware_concurrency());
  return 0;
}
