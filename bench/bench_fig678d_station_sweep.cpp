// Reproduces Fig. 6(d)/7(d)/8(d): impact of the number of charging
// stations (2..10, W = 2, P = 300) on kappa / xi / rho.
#include "bench/bench_sweep.h"

int main() {
  using namespace cews;
  bench::Banner("Impact of number of charging stations",
                "Fig. 6(d), 7(d), 8(d)");
  const core::BenchmarkOptions options = bench::BenchOptions(/*seed=*/14);
  const int pois = bench::Scaled(150, 300);
  std::vector<bench::SweepPoint> points;
  for (const int stations : {2, 4, 6, 8, 10}) {
    bench::SweepPoint point;
    point.x_label = std::to_string(stations);
    point.map = bench::MakeBenchMap(
        bench::BenchMapConfig(pois, 2, stations), 42);
    point.env_config = bench::BenchEnvConfig();
    points.push_back(std::move(point));
  }
  bench::RunSweep("fig678d_station_sweep", "stations", points, options);
  return 0;
}
