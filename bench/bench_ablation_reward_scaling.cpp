// Ablation of reward scaling: raw rewards vs a fixed 0.1 scale vs the
// adaptive running-std normalizer. Motivates the implementation note in
// DESIGN.md — with O(10) returns the shared value head cannot catch up
// within a short training budget, starving the advantage signal.
#include "bench/bench_util.h"
#include "core/drl_cews.h"

int main() {
  using namespace cews;
  bench::Banner("Ablation: reward scaling", "implementation design choice");
  const core::BenchmarkOptions options = bench::BenchOptions(/*seed=*/25);
  const int pois = bench::Scaled(150, 300);
  const env::Map map =
      bench::MakeBenchMap(bench::BenchMapConfig(pois, 2, 4), 42);
  const env::EnvConfig env_config = bench::BenchEnvConfig();

  struct Variant {
    const char* name;
    float scale;
    bool normalize;
  };
  const Variant variants[] = {
      {"raw rewards (scale 1.0)", 1.0f, false},
      {"fixed scale 0.1", 0.1f, false},
      {"running-std normalizer", 1.0f, true},
  };

  Table table({"scaling", "kappa", "xi", "rho"});
  for (const Variant& variant : variants) {
    agents::TrainerConfig config = core::MakeTrainerConfig(
        core::Algorithm::kDppo, env_config, options);
    config.num_employees = options.num_employees;
    config.batch_size = options.batch_size;
    config.reward_scale = variant.scale;
    config.normalize_rewards = variant.normalize;
    core::DrlCews system(config, map);
    system.Train();
    const agents::EvalResult r = system.Evaluate(options.eval_episodes);
    table.AddRow({variant.name, Table::Fmt(r.kappa), Table::Fmt(r.xi),
                  Table::Fmt(r.rho)});
    std::printf("  %-26s kappa=%.3f rho=%.3f\n", variant.name, r.kappa,
                r.rho);
    std::fflush(stdout);
  }
  std::printf("\n");
  bench::Emit(table, "ablation_reward_scaling");
  return 0;
}
