// Reproduces Fig. 6(b)/7(b)/8(b): impact of the number of workers
// (W = 1..25, P = 300) on kappa / xi / rho for all five algorithms.
#include "bench/bench_sweep.h"

int main() {
  using namespace cews;
  bench::Banner("Impact of number of workers", "Fig. 6(b), 7(b), 8(b)");
  const core::BenchmarkOptions options = bench::BenchOptions(/*seed=*/12);
  const int pois = bench::Scaled(150, 300);
  std::vector<int> worker_counts = {1, 2, 5, 10, 25};
  if (!bench::FullMode()) worker_counts = {1, 2, 5, 10};  // 25 in full mode
  std::vector<bench::SweepPoint> points;
  for (const int workers : worker_counts) {
    bench::SweepPoint point;
    point.x_label = std::to_string(workers);
    point.map =
        bench::MakeBenchMap(bench::BenchMapConfig(pois, workers, 4), 42);
    point.env_config = bench::BenchEnvConfig();
    points.push_back(std::move(point));
  }
  bench::RunSweep("fig678b_worker_sweep", "W", points, options);
  return 0;
}
