// Reproduces Table II: kappa / xi / rho as a function of the number of
// employees {1, 2, 4, 8, 16} and the update batch size {50, 125, 250, 500}
// (W = 2, P = 200). The paper's finding: performance improves with more
// employees and peaks around batch 250.
#include "bench/bench_util.h"
#include "core/drl_cews.h"

int main() {
  using namespace cews;
  bench::Banner("Impact of two hyperparameters", "Table II");
  const core::BenchmarkOptions base = bench::BenchOptions(/*seed=*/17);
  const int pois = bench::Scaled(100, 200);
  const env::Map map =
      bench::MakeBenchMap(bench::BenchMapConfig(pois, 2, 4), 42);

  const std::vector<int> employee_counts = {1, 2, 4, 8, 16};
  const std::vector<int> batch_sizes = {50, 125, 250, 500};
  // Table II is 20 training runs; keep each one short in quick mode.
  const int episodes = static_cast<int>(
      GetEnvInt("CEWS_BENCH_EPISODES", bench::Scaled(12, 2500)));

  std::vector<std::string> headers = {"batch", "metric"};
  for (const int e : employee_counts) {
    headers.push_back("E=" + std::to_string(e));
  }
  Table table(headers);

  for (const int batch : batch_sizes) {
    std::vector<std::string> kappa_row = {std::to_string(batch), "kappa"};
    std::vector<std::string> xi_row = {std::to_string(batch), "xi"};
    std::vector<std::string> rho_row = {std::to_string(batch), "rho"};
    for (const int employees : employee_counts) {
      core::BenchmarkOptions options = base;
      options.episodes = episodes;
      options.num_employees = employees;
      options.batch_size = batch;
      core::DrlCews system(
          core::MakeTrainerConfig(core::Algorithm::kDrlCews,
                                  bench::BenchEnvConfig(), options),
          map);
      system.Train();
      const agents::EvalResult r = system.Evaluate(options.eval_episodes);
      kappa_row.push_back(Table::Fmt(r.kappa));
      xi_row.push_back(Table::Fmt(r.xi));
      rho_row.push_back(Table::Fmt(r.rho));
      std::printf("  [batch=%d employees=%d] kappa=%.3f xi=%.3f rho=%.3f\n",
                  batch, employees, r.kappa, r.xi, r.rho);
      std::fflush(stdout);
    }
    table.AddRow(std::move(kappa_row));
    table.AddRow(std::move(xi_row));
    table.AddRow(std::move(rho_row));
  }
  std::printf("\n");
  bench::Emit(table, "table2_hyperparams");
  return 0;
}
