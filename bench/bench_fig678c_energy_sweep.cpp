// Reproduces Fig. 6(c)/7(c)/8(c): impact of the per-worker energy budget
// (b0 = 10..50, W = 2, P = 300) on kappa / xi / rho.
#include "bench/bench_sweep.h"

int main() {
  using namespace cews;
  bench::Banner("Impact of energy budget", "Fig. 6(c), 7(c), 8(c)");
  const core::BenchmarkOptions options = bench::BenchOptions(/*seed=*/13);
  const int pois = bench::Scaled(150, 300);
  const env::Map map =
      bench::MakeBenchMap(bench::BenchMapConfig(pois, 2, 4), 42);
  std::vector<bench::SweepPoint> points;
  for (const int budget : {10, 20, 30, 40, 50}) {
    bench::SweepPoint point;
    point.x_label = std::to_string(budget);
    point.map = map;
    point.env_config = bench::BenchEnvConfig();
    point.env_config.initial_energy = budget;
    point.env_config.energy_capacity = std::max(40.0, double(budget));
    points.push_back(std::move(point));
  }
  bench::RunSweep("fig678c_energy_sweep", "budget", points, options);
  return 0;
}
