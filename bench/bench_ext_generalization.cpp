// Extension benchmark: generalization to unseen scenarios (the natural
// future-work question for a centralized learned controller). Trains
// DRL-CEWS and DPPO on one map and evaluates on the training map plus
// three maps generated with different seeds; the reactive planners provide
// a training-free reference.
#include "baselines/dnc.h"
#include "baselines/greedy.h"
#include "baselines/planner.h"
#include "bench/bench_util.h"
#include "core/drl_cews.h"
#include "env/state_encoder.h"

int main() {
  using namespace cews;
  bench::Banner("Extension: generalization to unseen maps",
                "beyond the paper");
  const core::BenchmarkOptions options = bench::BenchOptions(/*seed=*/27);
  const env::EnvConfig env_config = bench::BenchEnvConfig();
  const int pois = bench::Scaled(150, 300);

  const env::MapConfig map_config = bench::BenchMapConfig(pois, 2, 4);
  const env::Map train_map = bench::MakeBenchMap(map_config, 42);
  std::vector<std::pair<std::string, env::Map>> eval_maps = {
      {"train map", train_map},
      {"unseen #1", bench::MakeBenchMap(map_config, 1001)},
      {"unseen #2", bench::MakeBenchMap(map_config, 1002)},
      {"unseen #3", bench::MakeBenchMap(map_config, 1003)},
  };

  Table table({"map", "algorithm", "kappa", "rho"});

  // Train the two learned policies once on the training map.
  struct Learned {
    const char* name;
    std::unique_ptr<core::DrlCews> system;
  };
  std::vector<Learned> learned;
  for (const core::Algorithm algorithm :
       {core::Algorithm::kDrlCews, core::Algorithm::kDppo}) {
    auto system = std::make_unique<core::DrlCews>(
        core::MakeTrainerConfig(algorithm, env_config, options), train_map);
    system->Train();
    learned.push_back(
        Learned{core::AlgorithmName(algorithm) == "DPPO" ? "DPPO" : "DRL-CEWS",
                std::move(system)});
    std::printf("  trained %s\n", learned.back().name);
    std::fflush(stdout);
  }

  env::StateEncoder encoder({options.grid});
  for (const auto& [map_name, map] : eval_maps) {
    for (const Learned& l : learned) {
      env::Env env(env_config, map);
      Rng rng(options.seed + 7);
      const agents::EvalResult r = agents::EvaluatePolicyAveraged(
          l.system->net(), env, encoder, rng, options.eval_episodes);
      table.AddRow({map_name, l.name, Table::Fmt(r.kappa),
                    Table::Fmt(r.rho)});
      std::printf("  [%-9s] %-8s kappa=%.3f rho=%.3f\n", map_name.c_str(),
                  l.name, r.kappa, r.rho);
    }
    {
      env::Env env(env_config, map);
      const agents::EvalResult r =
          baselines::RunPlannerEpisode(baselines::GreedyPlanner(), env);
      table.AddRow({map_name, "Greedy", Table::Fmt(r.kappa),
                    Table::Fmt(r.rho)});
    }
    std::fflush(stdout);
  }
  std::printf("\n");
  bench::Emit(table, "ext_generalization");
  return 0;
}
