// Shared scaffolding for the figure/table reproduction harnesses.
//
// Every bench prints the paper's rows/series to stdout. By default a bench
// runs in *quick mode* — scaled-down map, horizon, episodes and network so
// the whole suite finishes on a laptop core while preserving the paper's
// qualitative shape (orderings, trends, crossovers). Set CEWS_BENCH_FULL=1
// for paper-scale runs and CEWS_BENCH_CSV=1 to also write <bench>.csv.
#ifndef CEWS_BENCH_BENCH_UTIL_H_
#define CEWS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "common/env_flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/algorithms.h"
#include "env/map.h"
#include "obs/metrics.h"

namespace cews::bench {

/// True when CEWS_BENCH_FULL=1: paper-scale settings.
inline bool FullMode() { return GetEnvBool("CEWS_BENCH_FULL"); }

/// Picks the quick or full value of a knob.
inline int Scaled(int quick, int full) { return FullMode() ? full : quick; }

/// The scenario used across benches (Section VII-A), sized per mode.
inline env::MapConfig BenchMapConfig(int pois, int workers, int stations) {
  env::MapConfig config;
  config.num_pois = pois;
  config.num_workers = workers;
  config.num_stations = stations;
  return config;
}

/// Generates the bench map; aborts on config errors (benches are trusted).
inline env::Map MakeBenchMap(const env::MapConfig& config, uint64_t seed) {
  Rng rng(seed);
  auto result = env::GenerateMap(config, rng);
  CEWS_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Environment config sized for the current mode (quick: shorter horizon).
inline env::EnvConfig BenchEnvConfig() {
  env::EnvConfig config;
  config.horizon = Scaled(60, 100);
  return config;
}

/// Training knobs sized for the current mode.
inline core::BenchmarkOptions BenchOptions(uint64_t seed) {
  core::BenchmarkOptions options;
  options.seed = seed;
  if (FullMode()) {
    options.episodes = 2500;
    options.num_employees = 8;
    options.batch_size = 250;
    options.update_epochs = 4;
    options.eval_episodes = 5;
    options.grid = 20;
    options.net = core::BenchmarkOptions::MakeBenchNet();
    options.net.conv1_channels = 8;
    options.net.conv2_channels = 16;
    options.net.conv3_channels = 16;
    options.net.feature_dim = 256;
    // Paper-faithful learning constants.
    options.lr = 1e-3f;
    options.gamma = 0.99f;
    options.curiosity_lr = 1e-3f;
    options.curiosity_eta = 0.3f;
    options.epsilon1 = 0.05;
  } else {
    options.episodes = 200;
    options.num_employees = 2;
    options.batch_size = 64;
    options.update_epochs = 6;
    options.eval_episodes = 2;
    options.grid = 12;
    options.net.conv1_channels = 4;
    options.net.conv2_channels = 6;
    options.net.conv3_channels = 6;
    options.net.feature_dim = 64;
    // Quick-mode learning constants (BenchmarkOptions defaults): higher lr,
    // gamma 0.95, reward scale 0.1, epsilon1 = paper 5%.
  }
  // Debug/smoke override for the training length of every bench.
  options.episodes = static_cast<int>(
      GetEnvInt("CEWS_BENCH_EPISODES", options.episodes));
  return options;
}

/// Prints the table and, when CEWS_BENCH_CSV=1, writes `<name>.csv`.
inline void Emit(const Table& table, const std::string& name) {
  std::printf("%s\n", table.ToString().c_str());
  if (GetEnvBool("CEWS_BENCH_CSV")) {
    const std::string path = name + ".csv";
    const Status status = table.WriteCsv(path);
    if (!status.ok()) {
      std::fprintf(stderr, "csv write failed: %s\n",
                   status.ToString().c_str());
    } else {
      std::printf("wrote %s\n", path.c_str());
    }
  }
}

/// Banner with the mode in effect.
inline void Banner(const char* title, const char* paper_ref) {
  std::printf("== %s ==\n(reproduces %s; mode: %s)\n\n", title, paper_ref,
              FullMode() ? "FULL (paper scale)" : "quick");
}

/// When CEWS_OBS_PROFILE=1, prints the obs profile summary (every duration
/// histogram sorted by total time) so a bench run doubles as a profile.
inline void MaybeEmitProfile() {
  if (!GetEnvBool("CEWS_OBS_PROFILE")) return;
  std::printf("\n-- profile (CEWS_OBS_PROFILE) --\n%s\n",
              obs::ProfileTable().ToString().c_str());
}

}  // namespace cews::bench

#endif  // CEWS_BENCH_BENCH_UTIL_H_
