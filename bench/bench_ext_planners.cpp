// Extension benchmark: obstacle-aware navigation. Compares Greedy, the
// A*-guided NavGreedy, and D&C across increasingly obstructed scenarios,
// isolating how much of Greedy's weakness (Section VII-I) is navigation
// myopia rather than lack of learning.
#include "baselines/dnc.h"
#include "baselines/greedy.h"
#include "baselines/nav_greedy.h"
#include "baselines/planner.h"
#include "bench/bench_util.h"

int main() {
  using namespace cews;
  bench::Banner("Extension: obstacle-aware navigation planners",
                "beyond the paper");
  const env::EnvConfig env_config = bench::BenchEnvConfig();

  struct Scenario {
    const char* name;
    int obstacles;
    bool hard_corner;
  };
  const Scenario scenarios[] = {
      {"open field", 0, false},
      {"standard (5 buildings + corner)", 5, true},
      {"dense rubble (12 buildings + corner)", 12, true},
  };

  Table table({"scenario", "planner", "kappa", "xi", "rho"});
  for (const Scenario& scenario : scenarios) {
    env::MapConfig map_config = bench::BenchMapConfig(150, 2, 4);
    map_config.num_obstacles = scenario.obstacles;
    map_config.hard_corner = scenario.hard_corner;
    const env::Map map = bench::MakeBenchMap(map_config, 42);

    struct Row {
      const char* name;
      agents::EvalResult result;
    };
    std::vector<Row> rows;
    {
      env::Env env(env_config, map);
      rows.push_back(
          {"Greedy",
           baselines::RunPlannerEpisode(baselines::GreedyPlanner(), env)});
    }
    {
      env::Env env(env_config, map);
      baselines::NavGreedyPlanner nav(map);
      rows.push_back({"NavGreedy", baselines::RunPlannerEpisode(nav, env)});
    }
    {
      env::Env env(env_config, map);
      rows.push_back(
          {"D&C",
           baselines::RunPlannerEpisode(baselines::DncPlanner(), env)});
    }
    for (const Row& row : rows) {
      table.AddRow({scenario.name, row.name, Table::Fmt(row.result.kappa),
                    Table::Fmt(row.result.xi), Table::Fmt(row.result.rho)});
      std::printf("  [%-32s] %-9s kappa=%.3f xi=%.3f rho=%.3f\n",
                  scenario.name, row.name, row.result.kappa, row.result.xi,
                  row.result.rho);
    }
  }
  std::printf("\n");
  bench::Emit(table, "ext_planners");
  return 0;
}
