// Shared driver for the Fig. 6/7/8 sweeps: each sweep point runs all five
// algorithms (Section VII-B) on the identical map instance and reports
// kappa / xi / rho — one row per (x, algorithm).
#ifndef CEWS_BENCH_BENCH_SWEEP_H_
#define CEWS_BENCH_BENCH_SWEEP_H_

#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace cews::bench {

/// One sweep point: the x label plus the scenario to evaluate.
struct SweepPoint {
  std::string x_label;
  env::Map map;
  env::EnvConfig env_config;
};

/// Runs all five algorithms over the sweep and emits the combined table.
inline void RunSweep(const std::string& bench_name,
                     const std::string& x_name,
                     const std::vector<SweepPoint>& points,
                     const core::BenchmarkOptions& options) {
  Table table({x_name, "algorithm", "kappa", "xi", "rho"});
  for (const SweepPoint& point : points) {
    for (const core::Algorithm algorithm : core::AllAlgorithms()) {
      const agents::EvalResult r = core::RunAlgorithm(
          algorithm, point.map, point.env_config, options);
      table.AddRow({point.x_label, core::AlgorithmName(algorithm),
                    Table::Fmt(r.kappa), Table::Fmt(r.xi),
                    Table::Fmt(r.rho)});
      std::printf("  [%s=%s] %-8s kappa=%.3f xi=%.3f rho=%.3f\n",
                  x_name.c_str(), point.x_label.c_str(),
                  core::AlgorithmName(algorithm).c_str(), r.kappa, r.xi,
                  r.rho);
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  Emit(table, bench_name);
}

}  // namespace cews::bench

#endif  // CEWS_BENCH_BENCH_SWEEP_H_
