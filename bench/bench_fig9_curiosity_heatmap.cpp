// Reproduces Fig. 9: curiosity value at each visited location over the
// course of training, for DRL-CEWS (top row) and DPPO (bottom row; the
// curiosity model observes DPPO's transitions passively without feeding its
// reward). W = 1, P = 300. The paper's findings: brightness (intrinsic
// reward) decays as the policy stabilizes, and DRL-CEWS's bright region
// covers a larger area — curiosity pushes exploration.
#include <cmath>

#include "bench/bench_util.h"
#include "core/drl_cews.h"

namespace {

void PrintAsciiHeatmaps(const char* name,
                        const std::vector<cews::agents::HeatmapSnapshot>& snaps,
                        int grid) {
  // Global scale so brightness is comparable across snapshots.
  double max_value = 0.0;
  for (const auto& snap : snaps) {
    for (double v : snap.cell_values) max_value = std::max(max_value, v);
  }
  std::printf("%s (glyphs .:-=+*#%%@ scale 0..%.4f; rows top=far)\n", name,
              max_value);
  for (const auto& snap : snaps) {
    std::printf(" after episode %d:\n", snap.episode);
    for (int y = grid - 1; y >= 0; --y) {
      std::printf("   ");
      for (int x = 0; x < grid; ++x) {
        const double v = snap.cell_values[static_cast<size_t>(y * grid + x)];
        const char* glyphs = " .:-=+*#%@";
        int level = 0;
        if (max_value > 0.0 && v > 0.0) {
          level = 1 + static_cast<int>(v / max_value * 8.999);
        }
        std::printf("%c", glyphs[level]);
      }
      std::printf("\n");
    }
    // Coverage statistic: how much of the space curiosity has lit up.
    int visited = 0;
    double total = 0.0;
    for (double v : snap.cell_values) {
      if (v > 0.0) ++visited;
      total += v;
    }
    std::printf("   visited cells: %d/%d, mean curiosity: %.5f\n\n", visited,
                grid * grid,
                total / std::max(1, visited));
  }
}

}  // namespace

int main() {
  using namespace cews;
  bench::Banner("Curiosity visualization over training", "Fig. 9");
  core::BenchmarkOptions options = bench::BenchOptions(/*seed=*/19);
  const int pois = bench::Scaled(150, 300);
  const env::Map map =
      bench::MakeBenchMap(bench::BenchMapConfig(pois, /*workers=*/1, 4), 42);
  const int episodes = std::max<int>(
      5, static_cast<int>(
             GetEnvInt("CEWS_BENCH_EPISODES", bench::Scaled(50, 600))));
  const int snapshot_every = episodes / 5;  // five panels, as in the paper

  struct Variant {
    const char* name;
    bool drl_cews;
  };
  for (const Variant& variant :
       {Variant{"DRL-CEWS", true}, Variant{"DPPO", false}}) {
    agents::TrainerConfig config = core::MakeTrainerConfig(
        variant.drl_cews ? core::Algorithm::kDrlCews : core::Algorithm::kDppo,
        bench::BenchEnvConfig(), options);
    config.episodes = episodes;
    config.heatmap_snapshot_every = snapshot_every;
    if (!variant.drl_cews) {
      // Attach a passive curiosity monitor to DPPO: trained on its
      // transitions, excluded from its reward.
      config.intrinsic = agents::IntrinsicMode::kSpatialCuriosity;
      config.add_intrinsic_to_reward = false;
    }
    core::DrlCews system(config, map);
    system.Train();
    PrintAsciiHeatmaps(variant.name, system.heatmap_snapshots(),
                       options.grid);
    const Status status = system.ExportHeatmapCsv(
        std::string("fig9_heatmap_") +
        (variant.drl_cews ? "drlcews" : "dppo") + ".csv");
    if (status.ok()) {
      std::printf("  wrote fig9_heatmap_%s.csv\n\n",
                  variant.drl_cews ? "drlcews" : "dppo");
    }
  }
  return 0;
}
