// Ablation of the curiosity weight eta (Eqn 17): sweeps the intrinsic
// reward scale under the sparse extrinsic reward. eta = 0 degenerates to
// "sparse only" (which the paper shows failing); very large eta drowns the
// task signal in exploration bonus.
#include "bench/bench_util.h"
#include "core/drl_cews.h"

int main() {
  using namespace cews;
  bench::Banner("Ablation: curiosity weight eta", "Eqn 17 design choice");
  const core::BenchmarkOptions options = bench::BenchOptions(/*seed=*/24);
  const int pois = bench::Scaled(150, 300);
  const env::Map map =
      bench::MakeBenchMap(bench::BenchMapConfig(pois, 2, 4), 42);
  const env::EnvConfig env_config = bench::BenchEnvConfig();

  Table table({"eta", "kappa", "xi", "rho"});
  for (const float eta : {0.0f, 0.1f, 0.3f, 0.5f, 1.0f, 2.0f}) {
    agents::TrainerConfig config = core::MakeTrainerConfig(
        core::Algorithm::kDrlCews, env_config, options);
    config.curiosity.eta = eta;
    if (eta == 0.0f) config.intrinsic = agents::IntrinsicMode::kNone;
    core::DrlCews system(config, map);
    system.Train();
    const agents::EvalResult r = system.Evaluate(options.eval_episodes);
    table.AddRow({Table::Fmt(eta, 1), Table::Fmt(r.kappa), Table::Fmt(r.xi),
                  Table::Fmt(r.rho)});
    std::printf("  eta=%.1f kappa=%.3f xi=%.3f rho=%.3f\n", eta, r.kappa,
                r.xi, r.rho);
    std::fflush(stdout);
  }
  std::printf("\n");
  bench::Emit(table, "ablation_eta");
  return 0;
}
