// Benchmark of the distributed trainer (src/dist): fork-mode chief +
// employee processes over a unix socket, sweeping employee count x
// envs-per-employee. Reports end-to-end training throughput (env steps/s
// across all employees) and the transport cost per iteration (bytes of
// parameter broadcast + rollout collection, frame overhead included).
//
// Two caveats for reading the numbers:
//   * Single-core hosts serialize the employee processes — the scaling
//     column is meaningful on multi-core machines only (the CPU count is
//     printed with the results).
//   * The chief's learn step is on the critical path (employees idle while
//     it updates), so steps/s grows sublinearly in employees even with
//     enough cores — exactly the trade the single-learner design makes for
//     bitwise determinism.
//
// Writes BENCH_dist.json (path overridable via CEWS_BENCH_DIST_OUT) with
// one record per swept point.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "dist/trainer.h"
#include "env/map.h"

namespace {

using namespace cews;

env::Map BenchMap() {
  env::MapConfig config;
  config.num_pois = 40;
  config.num_workers = 2;
  config.num_stations = 2;
  config.num_obstacles = 2;
  Rng rng(42);
  auto result = env::GenerateMap(config, rng);
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

dist::DistTrainerConfig BaseConfig() {
  dist::DistTrainerConfig cfg;
  cfg.trainer.episodes = 6;
  cfg.trainer.batch_size = 64;
  cfg.trainer.update_epochs = 2;
  cfg.trainer.runtime_threads = 1;  // fork safety + honest per-process cost
  cfg.trainer.env.horizon = 40;
  cfg.trainer.encoder.grid = 12;
  cfg.trainer.net.grid = 12;
  cfg.trainer.net.conv1_channels = 4;
  cfg.trainer.net.conv2_channels = 6;
  cfg.trainer.net.conv3_channels = 6;
  cfg.trainer.net.feature_dim = 64;
  cfg.trainer.seed = 7;
  return cfg;
}

struct Row {
  int employees = 0;
  int envs = 0;
  double seconds = 0.0;
  double steps_per_sec = 0.0;
  double bytes_per_iter = 0.0;
  double tx_mb = 0.0;
  double rx_mb = 0.0;
};

}  // namespace

int main() {
  const env::Map map = BenchMap();
  std::vector<Row> rows;

  const std::vector<std::pair<int, int>> sweep = {
      {1, 1}, {2, 1}, {4, 1}, {1, 2}, {2, 2}, {4, 2},
  };
  for (const auto& [employees, envs] : sweep) {
    dist::DistTrainerConfig cfg = BaseConfig();
    cfg.trainer.num_employees = employees;
    cfg.trainer.envs_per_employee = envs;
    cfg.address = "unix:/tmp/cews_bench_dist_" + std::to_string(::getpid()) +
                  ".sock";

    dist::ChiefServer server(cfg, map);
    if (!server.Bind().ok()) std::abort();
    cfg.address = server.address();
    auto pids = dist::SpawnEmployees(cfg, map);
    if (!pids.ok()) std::abort();
    dist::DistTrainResult result;
    const Status run_status = server.Run(&result);
    const Status reap_status = dist::ReapEmployees(*pids);
    if (!run_status.ok() || !reap_status.ok()) {
      std::fprintf(stderr, "bench point failed: %s / %s\n",
                   run_status.ToString().c_str(),
                   reap_status.ToString().c_str());
      std::abort();
    }

    Row row;
    row.employees = employees;
    row.envs = envs;
    row.seconds = result.seconds;
    const int64_t steps = static_cast<int64_t>(cfg.trainer.episodes) *
                          cfg.trainer.env.horizon * envs * employees;
    row.steps_per_sec =
        result.seconds > 0 ? static_cast<double>(steps) / result.seconds : 0;
    row.bytes_per_iter =
        static_cast<double>(result.bytes_tx + result.bytes_rx) /
        cfg.trainer.episodes;
    row.tx_mb = static_cast<double>(result.bytes_tx) * 1e-6;
    row.rx_mb = static_cast<double>(result.bytes_rx) * 1e-6;
    rows.push_back(row);
    std::printf("employees=%d envs=%d: %.2fs, %.0f steps/s, %.0f B/iter\n",
                employees, envs, row.seconds, row.steps_per_sec,
                row.bytes_per_iter);
  }

  Table table({"employees", "envs_per_employee", "seconds", "steps_per_sec",
               "bytes_per_iter", "tx_mb", "rx_mb"});
  for (const Row& row : rows) {
    table.AddRow({std::to_string(row.employees), std::to_string(row.envs),
                  Table::Fmt(row.seconds, 2), Table::Fmt(row.steps_per_sec, 0),
                  Table::Fmt(row.bytes_per_iter, 0), Table::Fmt(row.tx_mb, 2),
                  Table::Fmt(row.rx_mb, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "note: fork-mode scaling is meaningful on multi-core hosts only "
      "(this host: %u cores); the chief's learn step serializes either "
      "way.\n",
      std::thread::hardware_concurrency());

  std::string out_path = "BENCH_dist.json";
  if (const char* p = std::getenv("CEWS_BENCH_DIST_OUT")) out_path = p;
  std::ofstream out(out_path);
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"employees\": %d, \"envs_per_employee\": %d, \"seconds\": %.3f, "
        "\"steps_per_sec\": %.1f, \"bytes_per_iter\": %.1f, "
        "\"tx_mb\": %.3f, \"rx_mb\": %.3f}",
        rows[i].employees, rows[i].envs, rows[i].seconds,
        rows[i].steps_per_sec, rows[i].bytes_per_iter, rows[i].tx_mb,
        rows[i].rx_mb);
    out << buf << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::printf("json -> %s\n", out_path.c_str());
  return 0;
}
