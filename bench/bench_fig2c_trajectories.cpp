// Reproduces Fig. 2(c): attained trajectories for 2 drones with 4 charging
// stations under a trained DRL-CEWS policy. Emits the trajectory CSV and a
// per-worker path summary (distance traveled, charging slots, collisions).
#include "bench/bench_util.h"
#include "core/drl_cews.h"

int main() {
  using namespace cews;
  bench::Banner("Attained trajectories, 2 drones / 4 stations", "Fig. 2(c)");
  const core::BenchmarkOptions options = bench::BenchOptions(/*seed=*/20);
  const int pois = bench::Scaled(150, 300);
  const env::Map map =
      bench::MakeBenchMap(bench::BenchMapConfig(pois, 2, 4), 42);

  core::DrlCews system(
      core::MakeTrainerConfig(core::Algorithm::kDrlCews,
                              bench::BenchEnvConfig(), options),
      map);
  const agents::TrainResult train = system.Train();
  std::printf("trained %.1fs\n", train.seconds);

  const Status status = system.ExportTrajectoryCsv("fig2c_trajectories.csv");
  CEWS_CHECK(status.ok()) << status.ToString();
  std::printf("wrote fig2c_trajectories.csv\n\n");

  // Summarize the evaluation episode the export just ran.
  env::Env env(system.config().env, map);
  Rng rng(7);
  env::StateEncoder encoder(system.config().encoder);
  agents::EvaluatePolicy(system.net(), env, encoder, rng);
  Table table({"worker", "path length", "kappa contribution", "collisions",
               "charged energy"});
  const double total = map.TotalInitialData();
  for (int w = 0; w < env.num_workers(); ++w) {
    const auto& traj = env.trajectories()[static_cast<size_t>(w)];
    double length = 0.0;
    for (size_t i = 1; i < traj.size(); ++i) {
      length += env::Distance(traj[i - 1], traj[i]);
    }
    const env::WorkerState& ws = env.workers()[static_cast<size_t>(w)];
    table.AddRow({std::to_string(w), Table::Fmt(length, 2),
                  Table::Fmt(ws.collected_total / total),
                  std::to_string(ws.collisions),
                  Table::Fmt(ws.charged_total, 1)});
  }
  bench::Emit(table, "fig2c_summary");
  return 0;
}
