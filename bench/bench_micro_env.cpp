// Micro-benchmarks of the crowdsensing simulator (google-benchmark).
#include <benchmark/benchmark.h>

#include "baselines/dnc.h"
#include "baselines/greedy.h"
#include "env/env.h"
#include "env/map.h"
#include "env/state_encoder.h"

namespace {

using namespace cews;

env::Map BenchMap(int pois, int workers) {
  env::MapConfig config;
  config.num_pois = pois;
  config.num_workers = workers;
  Rng rng(42);
  auto result = env::GenerateMap(config, rng);
  CEWS_CHECK(result.ok());
  return std::move(result).value();
}

void BM_GenerateMap(benchmark::State& state) {
  env::MapConfig config;
  config.num_pois = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env::GenerateMap(config, rng));
  }
}
BENCHMARK(BM_GenerateMap)->Arg(100)->Arg(500);

void BM_EnvStep(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  env::Env env(env::EnvConfig{}, BenchMap(300, workers));
  Rng rng(2);
  std::vector<env::WorkerAction> actions(static_cast<size_t>(workers));
  for (auto _ : state) {
    if (env.Done()) env.Reset();
    for (auto& a : actions) {
      a.move = static_cast<int>(rng.UniformInt(17));
      a.charge = rng.Bernoulli(0.1);
    }
    benchmark::DoNotOptimize(env.Step(actions));
  }
  state.SetItemsProcessed(state.iterations() * workers);
}
BENCHMARK(BM_EnvStep)->Arg(1)->Arg(2)->Arg(10);

void BM_StateEncode(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  env::Env env(env::EnvConfig{}, BenchMap(300, 2));
  env::StateEncoder encoder({grid});
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(env));
  }
}
BENCHMARK(BM_StateEncode)->Arg(12)->Arg(20);

void BM_GreedyPlan(benchmark::State& state) {
  env::Env env(env::EnvConfig{}, BenchMap(300, 2));
  baselines::GreedyPlanner planner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Plan(env));
  }
}
BENCHMARK(BM_GreedyPlan);

void BM_DncPlan(benchmark::State& state) {
  const int pois = static_cast<int>(state.range(0));
  env::Env env(env::EnvConfig{}, BenchMap(pois, 2));
  baselines::DncPlanner planner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Plan(env));
  }
}
BENCHMARK(BM_DncPlan)->Arg(100)->Arg(300);

void BM_SegmentFree(benchmark::State& state) {
  const env::Map map = BenchMap(100, 1);
  Rng rng(3);
  for (auto _ : state) {
    const env::Position a{rng.Uniform(0.1, 15.9), rng.Uniform(0.1, 15.9)};
    const env::Position b{rng.Uniform(0.1, 15.9), rng.Uniform(0.1, 15.9)};
    benchmark::DoNotOptimize(map.SegmentFree(a, b));
  }
}
BENCHMARK(BM_SegmentFree);

}  // namespace

BENCHMARK_MAIN();
