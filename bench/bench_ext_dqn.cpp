// Extension benchmark: value-based vs policy-gradient learning. Section IV
// asserts policy-gradient methods converge better in this domain; this
// harness trains a multi-agent DQN next to Edics (multi-agent PPO) and DPPO
// on one scenario with equal episode budgets.
#include "baselines/dqn.h"
#include "baselines/edics.h"
#include "bench/bench_util.h"
#include "core/drl_cews.h"

int main() {
  using namespace cews;
  bench::Banner("Extension: DQN vs policy-gradient baselines",
                "Section IV claim");
  const core::BenchmarkOptions options = bench::BenchOptions(/*seed=*/26);
  const int pois = bench::Scaled(150, 300);
  const env::Map map =
      bench::MakeBenchMap(bench::BenchMapConfig(pois, 2, 4), 42);
  const env::EnvConfig env_config = bench::BenchEnvConfig();

  Table table({"algorithm", "kappa", "xi", "rho"});

  {
    baselines::DqnConfig config;
    config.episodes = options.episodes;
    config.updates_per_episode = bench::Scaled(10, 30);
    config.env = env_config;
    config.encoder.grid = options.grid;
    config.trunk.grid = options.grid;
    config.trunk.conv1_channels = options.net.conv1_channels;
    config.trunk.conv2_channels = options.net.conv2_channels;
    config.trunk.conv3_channels = options.net.conv3_channels;
    config.trunk.feature_dim = options.net.feature_dim;
    config.lr = options.lr;
    config.gamma = options.gamma;
    config.reward_scale = options.reward_scale;
    config.epsilon_decay_episodes = options.episodes * 3 / 4;
    config.seed = options.seed;
    baselines::DqnTrainer trainer(config, map);
    trainer.Train();
    Rng rng(options.seed + 17);
    const agents::EvalResult r = trainer.Evaluate(rng, /*epsilon=*/0.02f);
    table.AddRow({"DQN (multi-agent)", Table::Fmt(r.kappa), Table::Fmt(r.xi),
                  Table::Fmt(r.rho)});
    std::printf("  DQN    kappa=%.3f rho=%.3f\n", r.kappa, r.rho);
    std::fflush(stdout);
  }

  for (const core::Algorithm algorithm :
       {core::Algorithm::kEdics, core::Algorithm::kDppo}) {
    const agents::EvalResult r =
        core::RunAlgorithm(algorithm, map, env_config, options);
    table.AddRow({core::AlgorithmName(algorithm), Table::Fmt(r.kappa),
                  Table::Fmt(r.xi), Table::Fmt(r.rho)});
    std::printf("  %-6s kappa=%.3f rho=%.3f\n",
                core::AlgorithmName(algorithm).c_str(), r.kappa, r.rho);
    std::fflush(stdout);
  }
  std::printf("\n");
  bench::Emit(table, "ext_dqn");
  return 0;
}
