// Helper for the training-curve figures (Fig. 4 and Fig. 5): runs several
// trainer variants on the same map and tabulates smoothed per-episode
// metrics side by side.
#ifndef CEWS_BENCH_BENCH_CURVES_H_
#define CEWS_BENCH_BENCH_CURVES_H_

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace cews::bench {

/// One training variant and its per-episode history.
struct CurveRun {
  std::string name;
  std::vector<agents::EpisodeRecord> history;
};

/// Trailing-window average of a metric at episode `e`.
inline double Smoothed(const std::vector<agents::EpisodeRecord>& history,
                       size_t e, int window,
                       double (*pick)(const agents::EpisodeRecord&)) {
  const size_t lo = e + 1 >= static_cast<size_t>(window)
                        ? e + 1 - static_cast<size_t>(window)
                        : 0;
  double acc = 0.0;
  for (size_t i = lo; i <= e; ++i) acc += pick(history[i]);
  return acc / static_cast<double>(e - lo + 1);
}

/// Emits one table per metric: rows = checkpoint episodes, one column per
/// variant, trailing-window smoothed.
inline void EmitCurves(const std::string& bench_name,
                       const std::vector<CurveRun>& runs, int checkpoints) {
  struct Metric {
    const char* name;
    double (*pick)(const agents::EpisodeRecord&);
  };
  const Metric metrics[] = {
      {"kappa", [](const agents::EpisodeRecord& r) { return r.kappa; }},
      {"xi", [](const agents::EpisodeRecord& r) { return r.xi; }},
      {"rho", [](const agents::EpisodeRecord& r) { return r.rho; }},
  };
  const size_t episodes = runs.front().history.size();
  const int window = std::max<int>(1, static_cast<int>(episodes) / 8);
  for (const Metric& metric : metrics) {
    std::vector<std::string> headers = {std::string("episode")};
    for (const CurveRun& run : runs) headers.push_back(run.name);
    Table table(headers);
    for (int c = 1; c <= checkpoints; ++c) {
      const size_t frac =
          episodes * static_cast<size_t>(c) / static_cast<size_t>(checkpoints);
      const size_t e = frac > 0 ? frac - 1 : 0;  // clamp for tiny runs
      std::vector<std::string> row = {std::to_string(e + 1)};
      for (const CurveRun& run : runs) {
        row.push_back(
            Table::Fmt(Smoothed(run.history, e, window, metric.pick)));
      }
      table.AddRow(std::move(row));
    }
    std::printf("-- %s --\n", metric.name);
    Emit(table, bench_name + "_" + metric.name);
  }
}

}  // namespace cews::bench

#endif  // CEWS_BENCH_BENCH_CURVES_H_
