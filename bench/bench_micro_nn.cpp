// Micro-benchmarks of the neural-network substrate (google-benchmark).
//
// The matmul/conv benchmarks sweep the intra-op thread count (second arg)
// so one run reports single- vs multi-thread kernel throughput; compare the
// items_per_second column across `threads` values. Kernel results are
// bitwise-identical at every thread count (see nn_parallel_determinism_test),
// so the sweep measures scheduling only.
#include <benchmark/benchmark.h>

#include "agents/policy_net.h"
#include "agents/ppo.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/params.h"

namespace {

using namespace cews;

/// Sizes the global pool for one benchmark run and restores the serial
/// default on destruction so unrelated benchmarks stay single-threaded.
class PoolGuard {
 public:
  explicit PoolGuard(benchmark::State& state, int arg_index = 1)
      : threads_(static_cast<int>(state.range(arg_index))) {
    runtime::SetGlobalPoolThreads(threads_);
  }
  ~PoolGuard() { runtime::SetGlobalPoolThreads(1); }
  int threads() const { return threads_; }

 private:
  int threads_;
};

void BM_MatMul(benchmark::State& state) {
  const nn::Index n = state.range(0);
  PoolGuard pool(state);
  Rng rng(1);
  nn::Tensor a = nn::Tensor::Zeros({n, n});
  nn::Tensor b = nn::Tensor::Zeros({n, n});
  for (nn::Index i = 0; i < a.numel(); ++i) {
    a.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
    b.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)
    ->ArgNames({"n", "threads"})
    ->ArgsProduct({{32, 128, 256}, {1, 2, 4}});

void BM_MatMulBackward(benchmark::State& state) {
  const nn::Index n = state.range(0);
  PoolGuard pool(state);
  Rng rng(1);
  nn::Tensor a = nn::Tensor::Zeros({n, n}, /*requires_grad=*/true);
  nn::Tensor b = nn::Tensor::Zeros({n, n}, /*requires_grad=*/true);
  for (nn::Index i = 0; i < a.numel(); ++i) {
    a.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
    b.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    nn::Tensor loss = nn::Mean(nn::MatMul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * 3 * n * n * n);
}
BENCHMARK(BM_MatMulBackward)
    ->ArgNames({"n", "threads"})
    ->ArgsProduct({{128, 256}, {1, 2, 4}});

void BM_Conv2dForward(benchmark::State& state) {
  const nn::Index g = state.range(0);
  PoolGuard pool(state);
  Rng rng(2);
  nn::Conv2dLayer conv(3, 8, 3, 1, 1, rng);
  // A training-shaped batch: intra-op kernels partition over images and
  // output channels, so a batch > 1 exposes the parallel axis.
  nn::Tensor x = nn::Tensor::Zeros({8, 3, g, g});
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 8 * g * g);
}
BENCHMARK(BM_Conv2dForward)
    ->ArgNames({"g", "threads"})
    ->ArgsProduct({{12, 20, 32}, {1, 2, 4}});

void BM_Conv2dForwardBackward(benchmark::State& state) {
  const nn::Index g = state.range(0);
  PoolGuard pool(state);
  Rng rng(3);
  nn::Conv2dLayer conv(3, 8, 3, 1, 1, rng);
  nn::Tensor x = nn::Tensor::Zeros({8, 3, g, g});
  for (auto _ : state) {
    conv.ZeroGrad();
    nn::Tensor loss = nn::Mean(nn::Square(conv.Forward(x)));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * 8 * g * g);
}
BENCHMARK(BM_Conv2dForwardBackward)
    ->ArgNames({"g", "threads"})
    ->ArgsProduct({{12, 20}, {1, 2, 4}});

void BM_SoftmaxLastDim(benchmark::State& state) {
  Rng rng(4);
  nn::Tensor x = nn::Tensor::Zeros({64, 17});
  for (nn::Index i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.Uniform(-2, 2));
  }
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::Softmax(x));
  }
}
BENCHMARK(BM_SoftmaxLastDim);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(5);
  nn::LayerNorm ln(512);
  nn::Tensor x = nn::Tensor::Zeros({16, 512});
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ln.Forward(x));
  }
}
BENCHMARK(BM_LayerNorm);

agents::PolicyNetConfig BenchNet(int grid) {
  agents::PolicyNetConfig config;
  config.grid = grid;
  config.num_workers = 2;
  config.num_moves = 17;
  config.conv1_channels = 6;
  config.conv2_channels = 8;
  config.conv3_channels = 8;
  config.feature_dim = 128;
  return config;
}

void BM_PolicyNetForward(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  Rng rng(6);
  agents::PolicyNet net(BenchNet(grid), rng);
  nn::Tensor x = nn::Tensor::Zeros({1, 3, grid, grid});
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(x));
  }
}
BENCHMARK(BM_PolicyNetForward)->Arg(12)->Arg(20);

// The vectorized acting path's inference shape: one Forward over a
// [batch, C, g, g] stack of per-env states. items_per_second counts env
// states, so dividing by BM_PolicyNetForward's rate gives the per-state
// amortization from batching (graph/dispatch overhead is paid once per
// batch instead of once per state).
void BM_PolicyNetForwardBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  PoolGuard pool(state);
  const int grid = 12;
  Rng rng(6);
  agents::PolicyNet net(BenchNet(grid), rng);
  nn::Tensor x = nn::Tensor::Zeros({batch, 3, grid, grid});
  for (nn::Index i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.Uniform(0, 1));
  }
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(x));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_PolicyNetForwardBatch)
    ->ArgNames({"batch", "threads"})
    ->ArgsProduct({{1, 4, 8, 16}, {1, 2}});

void BM_PpoLossBackward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  PoolGuard pool(state);
  const agents::PolicyNetConfig net_config = BenchNet(12);
  agents::PpoAgent agent(net_config, agents::PpoConfig{}, 7);
  Rng rng(8);
  agents::RolloutBuffer buffer;
  const std::vector<float> zero_state(
      static_cast<size_t>(3 * 12 * 12), 0.0f);
  for (int t = 0; t < batch; ++t) {
    const agents::ActResult act = agent.Act(zero_state, rng);
    agents::Transition tr;
    tr.state = zero_state;
    tr.moves = act.moves;
    tr.charges = act.charges;
    tr.log_prob = act.log_prob;
    tr.value = act.value;
    tr.reward = 1.0f;
    tr.done = t + 1 == batch;
    buffer.Add(std::move(tr));
  }
  buffer.ComputeAdvantages(0.99f, 0.95f, 0.0f);
  std::vector<size_t> idx;
  for (int i = 0; i < batch; ++i) idx.push_back(static_cast<size_t>(i));
  for (auto _ : state) {
    nn::ZeroGradients(agent.Parameters());
    // Gather + packed loss, exactly the trainer's per-epoch hot path.
    nn::Tensor loss = agent.ComputeLoss(buffer.GatherBatch(idx));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_PpoLossBackward)
    ->ArgNames({"batch", "threads"})
    ->ArgsProduct({{16, 64}, {1, 2, 4}});

void BM_AdamStep(benchmark::State& state) {
  Rng rng(9);
  nn::Mlp mlp({256, 256, 64}, nn::Activation::kRelu, rng);
  nn::Adam adam(mlp.Parameters(), 1e-3f);
  for (nn::Tensor p : mlp.Parameters()) p.ZeroGrad();
  for (auto _ : state) {
    adam.Step();
  }
}
BENCHMARK(BM_AdamStep);

}  // namespace

// Expanded BENCHMARK_MAIN() with a trailing obs profile dump: set
// CEWS_OBS_PROFILE=1 to print where the kernel time actually went.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  cews::bench::MaybeEmitProfile();
  return 0;
}
