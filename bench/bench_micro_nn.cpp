// Micro-benchmarks of the neural-network substrate (google-benchmark).
//
// The matmul/conv benchmarks sweep the intra-op thread count (second arg)
// so one run reports single- vs multi-thread kernel throughput; compare the
// items_per_second column across `threads` values. Kernel results are
// bitwise-identical at every thread count (see nn_parallel_determinism_test),
// so the sweep measures scheduling only.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "agents/policy_net.h"
#include "agents/ppo.h"
#include "bench/bench_util.h"
#include "common/env_flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "nn/gemm.h"
#include "nn/gemm_int8.h"
#include "nn/graph.h"
#include "nn/quant.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/params.h"
#include "nn/workspace.h"

namespace {

using namespace cews;

/// Sizes the global pool for one benchmark run and restores the serial
/// default on destruction so unrelated benchmarks stay single-threaded.
class PoolGuard {
 public:
  explicit PoolGuard(benchmark::State& state, int arg_index = 1)
      : threads_(static_cast<int>(state.range(arg_index))) {
    runtime::SetGlobalPoolThreads(threads_);
  }
  ~PoolGuard() { runtime::SetGlobalPoolThreads(1); }
  int threads() const { return threads_; }

 private:
  int threads_;
};

void BM_MatMul(benchmark::State& state) {
  const nn::Index n = state.range(0);
  PoolGuard pool(state);
  Rng rng(1);
  nn::Tensor a = nn::Tensor::Zeros({n, n});
  nn::Tensor b = nn::Tensor::Zeros({n, n});
  for (nn::Index i = 0; i < a.numel(); ++i) {
    a.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
    b.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)
    ->ArgNames({"n", "threads"})
    ->ArgsProduct({{32, 128, 256}, {1, 2, 4}});

void BM_MatMulBackward(benchmark::State& state) {
  const nn::Index n = state.range(0);
  PoolGuard pool(state);
  Rng rng(1);
  nn::Tensor a = nn::Tensor::Zeros({n, n}, /*requires_grad=*/true);
  nn::Tensor b = nn::Tensor::Zeros({n, n}, /*requires_grad=*/true);
  for (nn::Index i = 0; i < a.numel(); ++i) {
    a.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
    b.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    nn::Tensor loss = nn::Mean(nn::MatMul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * 3 * n * n * n);
}
BENCHMARK(BM_MatMulBackward)
    ->ArgNames({"n", "threads"})
    ->ArgsProduct({{128, 256}, {1, 2, 4}});

void BM_Conv2dForward(benchmark::State& state) {
  const nn::Index g = state.range(0);
  PoolGuard pool(state);
  Rng rng(2);
  nn::Conv2dLayer conv(3, 8, 3, 1, 1, rng);
  // A training-shaped batch: intra-op kernels partition over images and
  // output channels, so a batch > 1 exposes the parallel axis.
  nn::Tensor x = nn::Tensor::Zeros({8, 3, g, g});
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 8 * g * g);
}
BENCHMARK(BM_Conv2dForward)
    ->ArgNames({"g", "threads"})
    ->ArgsProduct({{12, 20, 32}, {1, 2, 4}});

void BM_Conv2dForwardBackward(benchmark::State& state) {
  const nn::Index g = state.range(0);
  PoolGuard pool(state);
  Rng rng(3);
  nn::Conv2dLayer conv(3, 8, 3, 1, 1, rng);
  nn::Tensor x = nn::Tensor::Zeros({8, 3, g, g});
  for (auto _ : state) {
    conv.ZeroGrad();
    nn::Tensor loss = nn::Mean(nn::Square(conv.Forward(x)));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * 8 * g * g);
}
BENCHMARK(BM_Conv2dForwardBackward)
    ->ArgNames({"g", "threads"})
    ->ArgsProduct({{12, 20}, {1, 2, 4}});

void BM_SoftmaxLastDim(benchmark::State& state) {
  Rng rng(4);
  nn::Tensor x = nn::Tensor::Zeros({64, 17});
  for (nn::Index i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.Uniform(-2, 2));
  }
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::Softmax(x));
  }
}
BENCHMARK(BM_SoftmaxLastDim);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(5);
  nn::LayerNorm ln(512);
  nn::Tensor x = nn::Tensor::Zeros({16, 512});
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ln.Forward(x));
  }
}
BENCHMARK(BM_LayerNorm);

agents::PolicyNetConfig BenchNet(int grid) {
  agents::PolicyNetConfig config;
  config.grid = grid;
  config.num_workers = 2;
  config.num_moves = 17;
  config.conv1_channels = 6;
  config.conv2_channels = 8;
  config.conv3_channels = 8;
  config.feature_dim = 128;
  return config;
}

void BM_PolicyNetForward(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  Rng rng(6);
  agents::PolicyNet net(BenchNet(grid), rng);
  nn::Tensor x = nn::Tensor::Zeros({1, 3, grid, grid});
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(x));
  }
}
BENCHMARK(BM_PolicyNetForward)->Arg(12)->Arg(20);

// The vectorized acting path's inference shape: one Forward over a
// [batch, C, g, g] stack of per-env states. items_per_second counts env
// states, so dividing by BM_PolicyNetForward's rate gives the per-state
// amortization from batching (graph/dispatch overhead is paid once per
// batch instead of once per state).
void BM_PolicyNetForwardBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  PoolGuard pool(state);
  const int grid = 12;
  Rng rng(6);
  agents::PolicyNet net(BenchNet(grid), rng);
  nn::Tensor x = nn::Tensor::Zeros({batch, 3, grid, grid});
  for (nn::Index i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.Uniform(0, 1));
  }
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(x));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_PolicyNetForwardBatch)
    ->ArgNames({"batch", "threads"})
    ->ArgsProduct({{1, 4, 8, 16}, {1, 2}});

/// Fills `buffer` with `batch` on-policy transitions from `agent`.
agents::RolloutBuffer FillPpoBuffer(agents::PpoAgent& agent, int batch) {
  Rng rng(8);
  agents::RolloutBuffer buffer;
  const std::vector<float> zero_state(static_cast<size_t>(3 * 12 * 12), 0.0f);
  for (int t = 0; t < batch; ++t) {
    const agents::ActResult act = agent.Act(zero_state, rng);
    agents::Transition tr;
    tr.state = zero_state;
    tr.moves = act.moves;
    tr.charges = act.charges;
    tr.log_prob = act.log_prob;
    tr.value = act.value;
    tr.reward = 1.0f;
    tr.done = t + 1 == batch;
    buffer.Add(std::move(tr));
  }
  buffer.ComputeAdvantages(0.99f, 0.95f, 0.0f);
  return buffer;
}

/// Sets CEWS_NN_GRAPH / CEWS_NN_CKPT for one of the three execution modes
/// (0 = tape, 1 = compiled graph, 2 = graph + checkpointing) and restores
/// the ambient defaults on destruction.
class ModeGuard {
 public:
  explicit ModeGuard(int mode) {
    setenv("CEWS_NN_GRAPH", mode > 0 ? "1" : "0", 1);
    setenv("CEWS_NN_CKPT", mode == 2 ? "1" : "0", 1);
  }
  ~ModeGuard() {
    unsetenv("CEWS_NN_GRAPH");
    unsetenv("CEWS_NN_CKPT");
  }
};

// mode 0 re-tapes the loss every iteration; mode 1 replays the compiled
// graph (recorded on the first iteration); mode 2 additionally drops the
// checkpointed trunk activations and recomputes them during backward. The
// arena_bytes counter on the graph modes is the planned peak activation
// memory — compare mode 1 vs 2 for the checkpointing saving.
void BM_PpoLossBackward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  PoolGuard pool(state);
  ModeGuard mode_guard(static_cast<int>(state.range(2)));
  const agents::PolicyNetConfig net_config = BenchNet(12);
  agents::PpoAgent agent(net_config, agents::PpoConfig{}, 7);
  agents::RolloutBuffer buffer = FillPpoBuffer(agent, batch);
  std::vector<size_t> idx;
  for (int i = 0; i < batch; ++i) idx.push_back(static_cast<size_t>(i));
  for (auto _ : state) {
    nn::ZeroGradients(agent.Parameters());
    // Gather + packed loss, exactly the trainer's per-epoch hot path.
    nn::Tensor loss = agent.ComputeLoss(buffer.GatherBatch(idx));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
  if (state.range(2) > 0) {
    state.counters["arena_bytes"] =
        static_cast<double>(agent.LossGraphArenaBytes());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_PpoLossBackward)
    ->ArgNames({"batch", "threads", "mode"})
    ->ArgsProduct({{16, 64}, {1, 2, 4}, {0, 1, 2}});

// Graph build vs replay on a bare MLP classification loss: mode 0 is the
// per-call tape baseline (fwd + bwd), mode 1 replays a compiled graph
// (fwd + bwd), mode 2 measures the one-time record + finalize + plan cost
// paid on a shape-cache miss (includes one eager forward).
void BM_GraphBuildVsReplay(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const nn::Index b = 64, in = 192, h = 256, classes = 32;
  Rng rng(31);
  auto rnd = [&](const nn::Shape& s, bool rg) {
    std::vector<float> v(static_cast<size_t>(nn::NumElements(s)));
    for (float& f : v) f = static_cast<float>(rng.Uniform(-0.1, 0.1));
    return nn::Tensor::FromData(s, std::move(v), rg);
  };
  nn::Tensor w1 = rnd({in, h}, true);
  nn::Tensor b1 = rnd({h}, true);
  nn::Tensor w2 = rnd({h, classes}, true);
  nn::Tensor x = rnd({b, in}, false);
  auto idx = std::make_shared<std::vector<nn::Index>>();
  for (nn::Index i = 0; i < b; ++i) idx->push_back(i % classes);
  const auto build = [&] {
    nn::Tensor hid = nn::Relu(nn::AddBias(nn::MatMul(x, w1), b1));
    return nn::Neg(
        nn::Mean(nn::GatherLastDim(nn::LogSoftmax(nn::MatMul(hid, w2)), idx)));
  };
  if (mode == 1) {
    nn::graph::BeginRecording();
    nn::graph::MarkPlaceholder(x);
    nn::Tensor loss = build();
    nn::graph::GraphPtr g = nn::graph::EndRecording(loss);
    for (auto _ : state) {
      g->Forward();
      loss.Backward();
      benchmark::DoNotOptimize(loss.item());
    }
    state.counters["arena_bytes"] = static_cast<double>(g->arena_bytes());
  } else if (mode == 2) {
    for (auto _ : state) {
      nn::graph::BeginRecording();
      nn::graph::MarkPlaceholder(x);
      nn::Tensor loss = build();
      nn::graph::GraphPtr g = nn::graph::EndRecording(loss);
      benchmark::DoNotOptimize(g->arena_bytes());
    }
  } else {
    for (auto _ : state) {
      nn::Tensor loss = build();
      loss.Backward();
      benchmark::DoNotOptimize(loss.item());
    }
  }
}
BENCHMARK(BM_GraphBuildVsReplay)->ArgNames({"mode"})->Arg(0)->Arg(1)->Arg(2);

void BM_AdamStep(benchmark::State& state) {
  Rng rng(9);
  nn::Mlp mlp({256, 256, 64}, nn::Activation::kRelu, rng);
  nn::Adam adam(mlp.Parameters(), 1e-3f);
  for (nn::Tensor p : mlp.Parameters()) p.ZeroGrad();
  for (auto _ : state) {
    adam.Step();
  }
}
BENCHMARK(BM_AdamStep);

// ---------------------------------------------------------------------------
// Raw GEMM kernel benchmarks: packed kernels vs the retained scalar
// reference. Serial on purpose — the acceptance metric for the packed
// kernels is single-thread GFLOP/s (thread scaling is BM_MatMul's job).
// items_per_second is FLOPs (2mnk per product), i.e. FLOP/s.

std::vector<float> RandomBuffer(nn::Index n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.Uniform(-1, 1));
  return v;
}

void BM_GemmNN(benchmark::State& state) {
  const nn::Index n = state.range(0);
  const bool packed = state.range(1) != 0;
  const std::vector<float> a = RandomBuffer(n * n, 11);
  const std::vector<float> b = RandomBuffer(n * n, 12);
  std::vector<float> c(static_cast<size_t>(n * n), 0.0f);
  for (auto _ : state) {
    if (packed) {
      nn::gemm::GemmNN(n, n, n, a.data(), n, 1, b.data(), n, c.data(), n);
    } else {
      nn::gemm::reference::GemmNN(n, n, n, a.data(), n, 1, b.data(), n,
                                  c.data(), n);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)
    ->ArgNames({"n", "packed"})
    ->ArgsProduct({{64, 256}, {0, 1}});

void BM_GemmNT(benchmark::State& state) {
  const nn::Index n = state.range(0);
  const bool packed = state.range(1) != 0;
  const std::vector<float> x = RandomBuffer(n * n, 13);
  const std::vector<float> y = RandomBuffer(n * n, 14);
  std::vector<float> c(static_cast<size_t>(n * n), 0.0f);
  for (auto _ : state) {
    if (packed) {
      nn::gemm::GemmNT(n, n, n, x.data(), n, y.data(), n, c.data(), n);
    } else {
      nn::gemm::reference::GemmNT(n, n, n, x.data(), n, y.data(), n, c.data(),
                                  n);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNT)
    ->ArgNames({"n", "packed"})
    ->ArgsProduct({{64, 256}, {0, 1}});

// ---------------------------------------------------------------------------
// CEWS_BENCH_KERNELS=1 kernel sweep: times packed vs reference kernels on
// the trainer + serve GEMM shapes and writes BENCH_kernels.json (path
// overridable via CEWS_BENCH_KERNELS_OUT). Runs single-threaded — the JSON
// records the per-kernel speedup the ISSUE acceptance criterion asks for —
// and also records workspace misses per iteration for the packed kernels
// (0 in steady state: all transient buffers come from the recycling arena).

struct KernelShape {
  const char* name;   // what the shape is in the training/serving pipeline
  const char* kind;   // "NN" or "NT"
  nn::Index m, n, k;
};

/// Seconds per iteration of `fn`, auto-scaling reps until the measured
/// window is long enough to trust (>= 0.1 s).
double TimePerIter(const std::function<void()>& fn) {
  fn();  // warm up: faults pages, fills the workspace arena
  long reps = 1;
  for (;;) {
    Stopwatch sw;
    for (long i = 0; i < reps; ++i) fn();
    const double s = sw.ElapsedSeconds();
    if (s >= 0.1 || reps >= (1L << 24)) return s / static_cast<double>(reps);
    reps = (s < 0.01) ? reps * 10
                      : static_cast<long>(static_cast<double>(reps) *
                                          (0.15 / s)) +
                            1;
  }
}

void RunKernelSweep() {
  using nn::gemm::GemmNN;
  using nn::gemm::GemmNT;
  runtime::SetGlobalPoolThreads(1);

  // Trainer shapes: PPO minibatch 64 through the policy net (conv products
  // per image, trunk FC, heads) and their backward products. Serve shapes:
  // the micro-batcher's batch-16 inference. Large squares are the headline
  // cache-blocking case.
  const KernelShape kShapes[] = {
      {"square_256", "NN", 256, 256, 256},
      {"square_256", "NT", 256, 256, 256},
      {"trunk_fc_fwd_b64", "NN", 64, 128, 1152},
      {"trunk_fc_dA_b64", "NT", 64, 1152, 128},
      {"trunk_fc_dW_b64", "NN", 1152, 128, 64},
      {"head_fwd_b64", "NN", 64, 34, 128},
      {"conv2_img_g12", "NN", 8, 144, 54},
      {"conv2_img_g20", "NN", 8, 400, 54},
      {"conv2_dW_img_g12", "NT", 8, 54, 144},
      {"serve_fc_fwd_b16", "NN", 16, 128, 1152},
  };

  std::string out_path = "BENCH_kernels.json";
  if (const char* p = std::getenv("CEWS_BENCH_KERNELS_OUT")) out_path = p;
  std::ofstream out(out_path);
  out << "{\n  \"benchmark\": \"gemm_kernel_sweep\",\n"
      << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n  \"threads_used\": 1,\n  \"flops_formula\": \"2*m*n*k\",\n"
      << "  \"shapes\": [\n";

  bool first = true;
  for (const KernelShape& s : kShapes) {
    const bool nt = std::string(s.kind) == "NT";
    const std::vector<float> a = RandomBuffer(s.m * s.k, 21);
    const std::vector<float> b =
        RandomBuffer(nt ? s.n * s.k : s.k * s.n, 22);
    std::vector<float> c(static_cast<size_t>(s.m * s.n), 0.0f);
    const auto run_packed = [&] {
      if (nt) {
        GemmNT(s.m, s.n, s.k, a.data(), s.k, b.data(), s.k, c.data(), s.n);
      } else {
        GemmNN(s.m, s.n, s.k, a.data(), s.k, 1, b.data(), s.n, c.data(), s.n);
      }
    };
    const auto run_ref = [&] {
      if (nt) {
        nn::gemm::reference::GemmNT(s.m, s.n, s.k, a.data(), s.k, b.data(),
                                    s.k, c.data(), s.n);
      } else {
        nn::gemm::reference::GemmNN(s.m, s.n, s.k, a.data(), s.k, 1, b.data(),
                                    s.n, c.data(), s.n);
      }
    };

    const double ref_s = TimePerIter(run_ref);
    const double packed_s = TimePerIter(run_packed);

    // Steady-state workspace traffic of the packed kernel (arena is warm
    // after TimePerIter): misses must be 0, hits >= 1 per iteration.
    const nn::Workspace::Stats before = nn::Workspace::GlobalStats();
    constexpr int kProbeIters = 16;
    for (int i = 0; i < kProbeIters; ++i) run_packed();
    const nn::Workspace::Stats after = nn::Workspace::GlobalStats();
    const double misses_per_iter =
        static_cast<double>(after.misses - before.misses) / kProbeIters;

    const double flops = 2.0 * static_cast<double>(s.m) *
                         static_cast<double>(s.n) * static_cast<double>(s.k);
    const double ref_gflops = flops / ref_s * 1e-9;
    const double packed_gflops = flops / packed_s * 1e-9;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"kind\": \"%s\", \"m\": %lld, \"n\": %lld, "
        "\"k\": %lld, \"reference_gflops\": %.3f, \"packed_gflops\": %.3f, "
        "\"speedup\": %.3f, \"workspace_misses_per_iter\": %.3f}",
        s.name, s.kind, static_cast<long long>(s.m),
        static_cast<long long>(s.n), static_cast<long long>(s.k), ref_gflops,
        packed_gflops, packed_s > 0 ? ref_s / packed_s : 0.0, misses_per_iter);
    out << (first ? "" : ",\n") << buf;
    first = false;
    std::printf("[kernels] %-18s %s m=%lld n=%lld k=%lld  ref %.2f GF/s  "
                "packed %.2f GF/s  speedup %.2fx  misses/iter %.2f\n",
                s.name, s.kind, static_cast<long long>(s.m),
                static_cast<long long>(s.n), static_cast<long long>(s.k),
                ref_gflops, packed_gflops,
                packed_s > 0 ? ref_s / packed_s : 0.0, misses_per_iter);
  }
  // --- Int8 serve path vs packed fp32 on the serve-hot shapes ---
  // Each side is timed with its true per-request cost: the fp32 forward
  // repacks its B panel every call (GemmNN's pack step), the int8 forward
  // quantizes its activations every call (rows for the trunk FC, im2col
  // columns + panel pack for the conv) against a weight panel quantized and
  // packed once at publish. The int8 kernel fuses the bias epilogue.
  struct Int8Shape {
    const char* name;
    const char* kind;  // "fc": A=activations, B=pre-packed weight panel;
                       // "conv": A=pre-quantized weight rows, B=im2col
    nn::Index m, n, k;
  };
  const Int8Shape kInt8Shapes[] = {
      {"serve_fc_fwd_b16", "fc", 16, 128, 1152},
      {"serve_fc_fwd_b64", "fc", 64, 128, 1152},
      {"serve_conv2_img_g12", "conv", 8, 144, 54},
      {"serve_conv2_img_g20", "conv", 8, 400, 54},
  };
  out << "\n  ],\n  \"int8_serve\": [\n";
  first = true;
  for (const Int8Shape& s : kInt8Shapes) {
    const bool fc = std::string(s.kind) == "fc";
    const std::vector<float> a = RandomBuffer(s.m * s.k, 31);
    const std::vector<float> b = RandomBuffer(s.k * s.n, 32);
    const std::vector<float> bias = RandomBuffer(fc ? s.n : s.m, 33);
    std::vector<float> c(static_cast<size_t>(s.m * s.n), 0.0f);

    const auto run_fp32 = [&] {
      nn::gemm::GemmNN(s.m, s.n, s.k, a.data(), s.k, 1, b.data(), s.n,
                       c.data(), s.n);
    };

    double int8_s = 0.0;
    if (fc) {
      // Publish-time: gather B's columns into channel-major rows, quantize
      // per output channel, pack the panel.
      std::vector<int8_t> wq(static_cast<size_t>(s.n * s.k));
      std::vector<float> sb(static_cast<size_t>(s.n));
      std::vector<float> bt(static_cast<size_t>(s.n * s.k));
      for (nn::Index j = 0; j < s.n; ++j) {
        for (nn::Index l = 0; l < s.k; ++l) bt[j * s.k + l] = b[l * s.n + j];
      }
      nn::gemm::QuantizeRowsInt8(s.n, s.k, bt.data(), s.k, wq.data(),
                                 sb.data());
      nn::quant::AlignedInt8Buffer packed(nn::gemm::Int8PanelBytes(s.k, s.n));
      nn::gemm::PackInt8NT(s.k, s.n, wq.data(), s.k, packed.data());
      // Request-time: per-row activation quantization + prepacked GEMM.
      std::vector<int8_t> aq(static_cast<size_t>(s.m * s.k));
      std::vector<float> sa(static_cast<size_t>(s.m));
      int8_s = TimePerIter([&] {
        nn::gemm::QuantizeRowsInt8(s.m, s.k, a.data(), s.k, aq.data(),
                                   sa.data());
        nn::gemm::Int8GemmPrepacked(s.m, s.n, s.k, aq.data(), s.k, sa.data(),
                                    packed.data(), sb.data(), nullptr,
                                    bias.data(), c.data(), s.n);
      });
    } else {
      // Publish-time: conv weights are natively channel-major — quantize
      // the rows once. Request-time: quantize-and-pack the im2col columns
      // into the panel in one fused pass, run the dot kernel.
      std::vector<int8_t> wq(static_cast<size_t>(s.m * s.k));
      std::vector<float> sa(static_cast<size_t>(s.m));
      nn::gemm::QuantizeRowsInt8(s.m, s.k, a.data(), s.k, wq.data(),
                                 sa.data());
      std::vector<float> sb(static_cast<size_t>(s.n));
      nn::quant::AlignedInt8Buffer panel(nn::gemm::Int8PanelBytes(s.k, s.n));
      int8_s = TimePerIter([&] {
        nn::gemm::QuantizePackColsInt8(s.k, s.n, b.data(), s.n, panel.data(),
                                       sb.data());
        nn::gemm::Int8GemmPrepacked(s.m, s.n, s.k, wq.data(), s.k, sa.data(),
                                    panel.data(), sb.data(), bias.data(),
                                    nullptr, c.data(), s.n);
      });
    }
    const double fp32_s = TimePerIter(run_fp32);

    const double flops = 2.0 * static_cast<double>(s.m) *
                         static_cast<double>(s.n) * static_cast<double>(s.k);
    const double fp32_gflops = flops / fp32_s * 1e-9;
    const double int8_gflops = flops / int8_s * 1e-9;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"kind\": \"%s\", \"m\": %lld, \"n\": %lld, "
        "\"k\": %lld, \"fp32_gflops\": %.3f, \"int8_gflops\": %.3f, "
        "\"speedup\": %.3f}",
        s.name, s.kind, static_cast<long long>(s.m),
        static_cast<long long>(s.n), static_cast<long long>(s.k), fp32_gflops,
        int8_gflops, int8_s > 0 ? fp32_s / int8_s : 0.0);
    out << (first ? "" : ",\n") << buf;
    first = false;
    std::printf("[kernels] %-20s %-4s m=%lld n=%lld k=%lld  fp32 %.2f GF/s  "
                "int8 %.2f GF/s  speedup %.2fx\n",
                s.name, s.kind, static_cast<long long>(s.m),
                static_cast<long long>(s.n), static_cast<long long>(s.k),
                fp32_gflops, int8_gflops, int8_s > 0 ? fp32_s / int8_s : 0.0);
  }

  // --- Tape vs compiled-graph replay on the PPO training step ---
  // One fresh agent per (batch, mode): the loss-graph cache compiles under
  // the mode's checkpoint setting, so modes must not share an agent.
  out << "\n  ],\n  \"ppo_loss_backward\": [\n";
  first = true;
  for (const int batch : {16, 64}) {
    double seconds[3] = {0, 0, 0};
    nn::Index arena[3] = {0, 0, 0};
    for (int mode = 0; mode < 3; ++mode) {
      ModeGuard guard(mode);
      agents::PpoAgent agent(BenchNet(12), agents::PpoConfig{}, 7);
      agents::RolloutBuffer buffer = FillPpoBuffer(agent, batch);
      std::vector<size_t> idx;
      for (int i = 0; i < batch; ++i) idx.push_back(static_cast<size_t>(i));
      seconds[mode] = TimePerIter([&] {
        nn::ZeroGradients(agent.Parameters());
        nn::Tensor loss = agent.ComputeLoss(buffer.GatherBatch(idx));
        loss.Backward();
      });
      arena[mode] = agent.LossGraphArenaBytes();
    }
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"batch\": %d, \"tape_us\": %.1f, \"graph_us\": %.1f, "
        "\"graph_ckpt_us\": %.1f, \"graph_speedup\": %.3f, "
        "\"graph_arena_bytes\": %lld, \"ckpt_arena_bytes\": %lld}",
        batch, seconds[0] * 1e6, seconds[1] * 1e6, seconds[2] * 1e6,
        seconds[1] > 0 ? seconds[0] / seconds[1] : 0.0,
        static_cast<long long>(arena[1]), static_cast<long long>(arena[2]));
    out << (first ? "" : ",\n") << buf;
    first = false;
    std::printf(
        "[kernels] ppo_loss_backward b=%-3d tape %.1f us  graph %.1f us "
        "(%.2fx)  ckpt %.1f us  arena %lld -> %lld bytes\n",
        batch, seconds[0] * 1e6, seconds[1] * 1e6,
        seconds[1] > 0 ? seconds[0] / seconds[1] : 0.0, seconds[2] * 1e6,
        static_cast<long long>(arena[1]), static_cast<long long>(arena[2]));
  }
  out << "\n  ]\n}\n";
  std::printf("[kernels] wrote %s\n", out_path.c_str());
}

}  // namespace

// Expanded BENCHMARK_MAIN() with a trailing obs profile dump: set
// CEWS_OBS_PROFILE=1 to print where the kernel time actually went. Set
// CEWS_BENCH_KERNELS=1 to run the packed-vs-reference GEMM sweep and write
// BENCH_kernels.json (use --benchmark_filter=NONE to skip the google
// benchmarks and run the sweep alone).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (cews::GetEnvBool("CEWS_BENCH_KERNELS")) RunKernelSweep();
  cews::bench::MaybeEmitProfile();
  return 0;
}
