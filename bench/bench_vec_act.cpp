// Micro-benchmark of the vectorized acting path (env::VecEnv + batched
// policy inference, PR "vec acting path").
//
// BM_VecActStep measures the full per-lockstep-step acting pipeline the
// trainers run in their rollout loops:
//
//   EncodeBatch -> MoveValidityMasks -> SamplePolicyBatch -> VecEnv::Step
//
// with items_per_second counting *env steps* (batch env instances advance
// per iteration). Comparing the batch=8 row against batch=1 shows the
// amortization the batched Forward buys: the autograd-graph and kernel
// dispatch overhead is paid once per lockstep step instead of once per env.
// The `threads` argument sizes the intra-op kernel pool via
// runtime::ResolveNumThreads, so 0 = all hardware cores (the trainer's
// runtime_threads=0 configuration).
//
// BM_VecEncodeBatch and BM_VecMaskBatch isolate the non-NN stages so a
// regression in either is attributable at a glance.
#include <benchmark/benchmark.h>

#include <vector>

#include "agents/eval.h"
#include "agents/policy_net.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "env/map.h"
#include "env/state_encoder.h"
#include "env/vec_env.h"
#include "nn/module.h"

namespace {

using namespace cews;

/// Sizes the global pool for one benchmark run (through ResolveNumThreads,
/// so 0 = hardware cores) and restores the serial default on destruction.
class PoolGuard {
 public:
  explicit PoolGuard(benchmark::State& state, int arg_index = 1)
      : threads_(runtime::ResolveNumThreads(
            static_cast<int>(state.range(arg_index)))) {
    runtime::SetGlobalPoolThreads(threads_);
  }
  ~PoolGuard() { runtime::SetGlobalPoolThreads(1); }

 private:
  int threads_;
};

env::Map BenchMap() {
  env::MapConfig config;
  config.num_pois = 80;
  config.num_workers = 2;
  config.num_stations = 3;
  config.num_obstacles = 4;
  Rng rng(42);
  auto result = env::GenerateMap(config, rng);
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

agents::PolicyNetConfig BenchNet(const env::Map& map,
                                 const env::EnvConfig& env_config,
                                 int grid) {
  agents::PolicyNetConfig config;
  config.grid = grid;
  config.num_workers = static_cast<int>(map.worker_spawns.size());
  config.num_moves = env_config.action_space.num_moves();
  config.conv1_channels = 6;
  config.conv2_channels = 8;
  config.conv3_channels = 8;
  config.feature_dim = 128;
  return config;
}

/// The trainers' acting hot path: encode all instances, mask, one batched
/// Forward + per-env sampling, lockstep Step. Auto-reset keeps every
/// instance live so the loop never runs out of episode.
void BM_VecActStep(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  PoolGuard pool(state);
  const int grid = 12;
  const env::Map map = BenchMap();
  env::EnvConfig env_config;
  env_config.horizon = 60;
  const env::StateEncoder encoder({grid});
  Rng net_rng(6);
  const agents::PolicyNet net(BenchNet(map, env_config, grid), net_rng);
  env::VecEnv vec(env_config, map, batch, /*auto_reset=*/true);
  Rng rng(7);
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    const std::vector<float> states = encoder.EncodeBatch(vec.EnvPtrs());
    const std::vector<uint8_t> masks = vec.MoveValidityMasks();
    std::vector<agents::ActResult> acts = agents::SamplePolicyBatch(
        net, states, batch, rng, /*deterministic=*/false, masks.data());
    std::vector<std::vector<env::WorkerAction>> actions;
    actions.reserve(static_cast<size_t>(batch));
    for (agents::ActResult& act : acts) {
      actions.push_back(std::move(act.actions));
    }
    benchmark::DoNotOptimize(vec.Step(actions));
  }
  // Each iteration advances `batch` env instances by one step, so
  // items_per_second is acting env-steps/s; compare across batch values.
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_VecActStep)
    ->ArgNames({"batch", "threads"})
    ->ArgsProduct({{1, 4, 8, 16}, {0, 1}});

/// Batched state encoding alone ([N, C, grid, grid] fill).
void BM_VecEncodeBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const env::Map map = BenchMap();
  env::EnvConfig env_config;
  env_config.horizon = 60;
  const env::StateEncoder encoder({12});
  env::VecEnv vec(env_config, map, batch, /*auto_reset=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.EncodeBatch(vec.EnvPtrs()));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_VecEncodeBatch)->ArgName("batch")->Arg(1)->Arg(4)->Arg(8)->Arg(
    16);

/// Per-instance move-validity mask extraction alone.
void BM_VecMaskBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const env::Map map = BenchMap();
  env::EnvConfig env_config;
  env_config.horizon = 60;
  env::VecEnv vec(env_config, map, batch, /*auto_reset=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec.MoveValidityMasks());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_VecMaskBatch)->ArgName("batch")->Arg(1)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

// Expanded BENCHMARK_MAIN() with a trailing obs profile dump: set
// CEWS_OBS_PROFILE=1 to print where the acting time actually went.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  cews::bench::MaybeEmitProfile();
  return 0;
}
