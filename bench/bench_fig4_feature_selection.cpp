// Reproduces Fig. 4: feature selection for the curiosity model — the four
// {shared, independent} x {embedding, direct} combinations plus RND
// (W = 2, P = 200). The paper's finding: shared embedding converges fastest
// and best; RND is inefficient in this multi-worker setting.
#include "bench/bench_curves.h"
#include "core/drl_cews.h"

int main() {
  using namespace cews;
  bench::Banner("Feature selection for the curiosity model", "Fig. 4");
  const core::BenchmarkOptions options = bench::BenchOptions(/*seed=*/16);
  const int pois = bench::Scaled(100, 200);
  const env::Map map =
      bench::MakeBenchMap(bench::BenchMapConfig(pois, 2, 4), 42);

  struct Variant {
    const char* name;
    agents::IntrinsicMode mode;
    agents::CuriosityFeature feature;
    agents::CuriosityStructure structure;
  };
  const Variant variants[] = {
      {"shared embedding", agents::IntrinsicMode::kSpatialCuriosity,
       agents::CuriosityFeature::kEmbedding,
       agents::CuriosityStructure::kShared},
      {"shared direct", agents::IntrinsicMode::kSpatialCuriosity,
       agents::CuriosityFeature::kDirect,
       agents::CuriosityStructure::kShared},
      {"indep embedding", agents::IntrinsicMode::kSpatialCuriosity,
       agents::CuriosityFeature::kEmbedding,
       agents::CuriosityStructure::kIndependent},
      {"indep direct", agents::IntrinsicMode::kSpatialCuriosity,
       agents::CuriosityFeature::kDirect,
       agents::CuriosityStructure::kIndependent},
      {"RND", agents::IntrinsicMode::kRnd,
       agents::CuriosityFeature::kEmbedding,
       agents::CuriosityStructure::kShared},
  };

  std::vector<bench::CurveRun> runs;
  for (const Variant& variant : variants) {
    agents::TrainerConfig config = core::MakeTrainerConfig(
        core::Algorithm::kDrlCews, bench::BenchEnvConfig(), options);
    config.intrinsic = variant.mode;
    config.curiosity.feature = variant.feature;
    config.curiosity.structure = variant.structure;
    agents::ChiefEmployeeTrainer trainer(config, map);
    const agents::TrainResult result = trainer.Train();
    std::printf("  trained %-17s (%.1fs): final kappa=%.3f rho=%.3f\n",
                variant.name, result.seconds, result.history.back().kappa,
                result.history.back().rho);
    std::fflush(stdout);
    runs.push_back(bench::CurveRun{variant.name, result.history});
  }
  std::printf("\n");
  bench::EmitCurves("fig4_feature_selection", runs, /*checkpoints=*/8);
  return 0;
}
