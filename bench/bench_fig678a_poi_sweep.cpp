// Reproduces Fig. 6(a)/7(a)/8(a): impact of the number of PoIs
// (P = 100..500, W = 2) on kappa / xi / rho for all five algorithms.
#include "bench/bench_sweep.h"

int main() {
  using namespace cews;
  bench::Banner("Impact of number of PoIs", "Fig. 6(a), 7(a), 8(a)");
  const core::BenchmarkOptions options = bench::BenchOptions(/*seed=*/11);
  std::vector<bench::SweepPoint> points;
  for (const int pois : {100, 200, 300, 400, 500}) {
    bench::SweepPoint point;
    point.x_label = std::to_string(pois);
    // Same seed at every point: P varies "without changing the
    // distribution of PoIs" (Section VII-F).
    point.map = bench::MakeBenchMap(bench::BenchMapConfig(pois, 2, 4), 42);
    point.env_config = bench::BenchEnvConfig();
    points.push_back(std::move(point));
  }
  bench::RunSweep("fig678a_poi_sweep", "P", points, options);
  return 0;
}
