// Reproduces Fig. 5: impact of dense vs. sparse extrinsic reward, each with
// and without the spatial curiosity model (W = 2, P = 300). The paper's
// finding: sparse + curiosity is best; sparse alone fails; curiosity only
// speeds up convergence under dense reward.
#include "bench/bench_curves.h"
#include "core/drl_cews.h"

int main() {
  using namespace cews;
  bench::Banner("Impact of reward mechanisms with curiosity", "Fig. 5");
  const core::BenchmarkOptions options = bench::BenchOptions(/*seed=*/15);
  const int pois = bench::Scaled(150, 300);
  const env::Map map =
      bench::MakeBenchMap(bench::BenchMapConfig(pois, 2, 4), 42);

  struct Variant {
    const char* name;
    agents::RewardMode reward;
    bool curiosity;
  };
  const Variant variants[] = {
      {"sparse+curiosity", agents::RewardMode::kSparse, true},
      {"sparse only", agents::RewardMode::kSparse, false},
      {"dense+curiosity", agents::RewardMode::kDense, true},
      {"dense only", agents::RewardMode::kDense, false},
  };

  std::vector<bench::CurveRun> runs;
  for (const Variant& variant : variants) {
    agents::TrainerConfig config = core::MakeTrainerConfig(
        core::Algorithm::kDrlCews, bench::BenchEnvConfig(), options);
    config.reward_mode = variant.reward;
    config.intrinsic = variant.curiosity
                           ? agents::IntrinsicMode::kSpatialCuriosity
                           : agents::IntrinsicMode::kNone;
    agents::ChiefEmployeeTrainer trainer(config, map);
    const agents::TrainResult result = trainer.Train();
    std::printf("  trained %-18s (%.1fs): final kappa=%.3f rho=%.3f\n",
                variant.name, result.seconds, result.history.back().kappa,
                result.history.back().rho);
    std::fflush(stdout);
    runs.push_back(bench::CurveRun{variant.name, result.history});
  }
  std::printf("\n");
  bench::EmitCurves("fig5_reward_mechanisms", runs, /*checkpoints=*/8);
  return 0;
}
