// Reproduces Fig. 3: wall-clock training time as a function of the number
// of employees (batch 250). The paper reports 16 employees taking 45.5%
// longer than 8 for a 1.7% rho gain, motivating the choice of 8.
//
// Note: on a single-core host the synchronous employees serialize, so time
// grows roughly linearly with the employee count — the paper's qualitative
// conclusion (diminishing returns past 8 employees) still shows.
#include "bench/bench_util.h"
#include "core/drl_cews.h"

int main() {
  using namespace cews;
  bench::Banner("Training time vs number of employees", "Fig. 3");
  const core::BenchmarkOptions base = bench::BenchOptions(/*seed=*/18);
  const int pois = bench::Scaled(100, 200);
  const env::Map map =
      bench::MakeBenchMap(bench::BenchMapConfig(pois, 2, 4), 42);
  const int episodes = static_cast<int>(
      GetEnvInt("CEWS_BENCH_EPISODES", bench::Scaled(10, 2500)));

  Table table({"employees", "seconds", "vs 8 employees", "rho"});
  std::vector<double> seconds;
  std::vector<double> rhos;
  const std::vector<int> employee_counts = {1, 2, 4, 8, 16};
  for (const int employees : employee_counts) {
    core::BenchmarkOptions options = base;
    options.episodes = episodes;
    options.num_employees = employees;
    options.batch_size = bench::Scaled(64, 250);
    core::DrlCews system(
        core::MakeTrainerConfig(core::Algorithm::kDrlCews,
                                bench::BenchEnvConfig(), options),
        map);
    const agents::TrainResult result = system.Train();
    const agents::EvalResult eval = system.Evaluate(options.eval_episodes);
    seconds.push_back(result.seconds);
    rhos.push_back(eval.rho);
    std::printf("  employees=%-2d seconds=%.2f rho=%.3f\n", employees,
                result.seconds, eval.rho);
    std::fflush(stdout);
  }
  const double baseline8 = seconds[3];
  for (size_t i = 0; i < employee_counts.size(); ++i) {
    const double delta = (seconds[i] - baseline8) / baseline8 * 100.0;
    table.AddRow({std::to_string(employee_counts[i]),
                  Table::Fmt(seconds[i], 2),
                  Table::Fmt(delta, 1) + "%", Table::Fmt(rhos[i])});
  }
  std::printf("\n");
  bench::Emit(table, "fig3_training_time");
  bench::MaybeEmitProfile();
  return 0;
}
